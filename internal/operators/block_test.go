package operators

import (
	"math"
	"testing"

	"repro/internal/prox"
	"repro/internal/vec"
)

// blockTestOps builds one operator of every block-implementing kind over a
// shared dimension.
func blockTestOps(n int) []struct {
	name string
	op   Operator
} {
	rng := vec.NewRNG(21)
	bf, inner := allocTestProxGrad(n)
	lin := allocTestLinear(n)

	// Sparse tridiagonal contraction.
	var entries []vec.COOEntry
	for i := 0; i < n; i++ {
		if i > 0 {
			entries = append(entries, vec.COOEntry{Row: i, Col: i - 1, Val: 0.3})
		}
		if i < n-1 {
			entries = append(entries, vec.COOEntry{Row: i, Col: i + 1, Val: 0.3})
		}
	}
	sp := NewSparseLinear(vec.NewCSR(n, n, entries), rng.NormalVector(n))

	// Dense least-squares pieces for FB / GradOp / separable variants.
	q := vec.NewDense(n, n)
	for i := 0; i < n; i++ {
		q.Set(i, i, 1.5+rng.Float64())
		if i > 0 {
			q.Set(i, i-1, 0.1)
			q.Set(i-1, i, 0.1)
		}
	}
	quad := NewQuadratic(q, rng.NormalVector(n), 0)
	a := make([]float64, n)
	t := make([]float64, n)
	for i := range a {
		a[i] = 1 + rng.Float64()
		t[i] = rng.Normal()
	}
	sep := NewSeparable(a, t)

	return []struct {
		name string
		op   Operator
	}{
		{"ProxGradBF", bf},
		{"ProxGradBF(Quadratic)", NewProxGradBF(quad, prox.L1{Lambda: 0.05}, MaxStep(quad))},
		{"ProxGradBF(Separable)", NewProxGradBF(sep, prox.L1{Lambda: 0.05}, MaxStep(sep))},
		{"ProxGradFB", NewProxGradFB(quad, prox.L1{Lambda: 0.05}, MaxStep(quad))},
		{"InnerIterated", inner},
		{"Relaxed(ProxGradBF)", &Relaxed{Inner: bf, Omega: 0.7}},
		{"Relaxed(Linear)", &Relaxed{Inner: lin, Omega: 0.7}},
		{"Linear", lin},
		{"SparseLinear", sp},
		{"GradOp", NewGradOp(quad, MaxStep(quad))},
		{"GradOp(Separable)", NewGradOp(sep, MaxStep(sep))},
	}
}

// The block fast path must be componentwise bit-identical to the
// per-component path for every block size and offset — the deterministic
// engines rely on identical trajectories whichever path runs.
func TestEvalBlockMatchesPerComponent(t *testing.T) {
	const n = 48
	x := vec.NewRNG(22).NormalVector(n)
	for _, tc := range blockTestOps(n) {
		scr := NewScratch()
		for _, blk := range [][2]int{{0, n}, {0, 1}, {5, 13}, {40, 48}, {7, 8}, {0, 8}} {
			lo, hi := blk[0], blk[1]
			out := make([]float64, hi-lo)
			EvalBlock(tc.op, scr, lo, hi, x, out)
			for c := lo; c < hi; c++ {
				want := EvalComponent(tc.op, NewScratch(), c, x)
				if out[c-lo] != want {
					t.Errorf("%s: block [%d,%d) component %d: block %v != per-component %v",
						tc.name, lo, hi, c, out[c-lo], want)
				}
			}
		}
	}
}

// The fallback (no block implementation, or nil scratch) must agree with the
// per-component path too, through the same dispatcher.
func TestEvalBlockFallback(t *testing.T) {
	const n = 16
	bf, _ := allocTestProxGrad(n)
	hidden := componentOnly{bf}
	x := vec.NewRNG(23).NormalVector(n)
	out := make([]float64, 8)
	EvalBlock(hidden, NewScratch(), 4, 12, x, out)
	for c := 4; c < 12; c++ {
		if want := bf.Component(c, x); out[c-4] != want {
			t.Errorf("fallback component %d: %v != %v", c, out[c-4], want)
		}
	}
	// nil scratch: dispatcher must not take the block path.
	EvalBlock(bf, nil, 4, 12, x, out)
	for c := 4; c < 12; c++ {
		if want := bf.Component(c, x); out[c-4] != want {
			t.Errorf("nil-scratch component %d: %v != %v", c, out[c-4], want)
		}
	}
}

func TestEvalBlockOutLengthPanics(t *testing.T) {
	bf, _ := allocTestProxGrad(8)
	defer func() {
		if recover() == nil {
			t.Fatal("EvalBlock with mismatched out length should panic")
		}
	}()
	EvalBlock(bf, NewScratch(), 0, 4, make([]float64, 8), make([]float64, 3))
}

// componentOnly hides every fast-path interface, exposing only the plain
// Operator contract.
type componentOnly struct{ inner Operator }

func (w componentOnly) Dim() int                             { return w.inner.Dim() }
func (w componentOnly) Component(i int, x []float64) float64 { return w.inner.Component(i, x) }
func (w componentOnly) Name() string                         { return w.inner.Name() }

// Residual and ResidualWith must agree between the one-full-application fast
// path and the per-component fallback to 1e-15 on ProxGradBF (the coupled
// operator whose per-component residual was O(n^2)).
func TestResidualFastPathAgreesOnProxGradBF(t *testing.T) {
	const n = 40
	bf, _ := allocTestProxGrad(n)
	x := vec.NewRNG(24).NormalVector(n)

	fast := Residual(bf, x)
	slow := Residual(componentOnly{bf}, x) // fallback loop: no FullApplier
	if d := math.Abs(fast - slow); d > 1e-15 {
		t.Errorf("Residual fast %v vs per-component %v: diff %g > 1e-15", fast, slow, d)
	}

	scr := NewScratch()
	fastW := ResidualWith(bf, scr, x)
	slowW := ResidualWith(componentOnly{bf}, scr, x)
	if d := math.Abs(fastW - slowW); d > 1e-15 {
		t.Errorf("ResidualWith fast %v vs per-component %v: diff %g > 1e-15", fastW, slowW, d)
	}
	if fast != fastW {
		t.Errorf("Residual %v != ResidualWith %v on the same operator", fast, fastW)
	}
}

// GradRange must be bit-identical to GradComponent for every Smooth that
// implements it.
func TestGradRangeMatchesGradComponent(t *testing.T) {
	const n = 32
	rng := vec.NewRNG(25)
	q := vec.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				q.Set(i, j, 4+rng.Float64())
			} else {
				q.Set(i, j, 0.05*rng.Normal())
			}
		}
	}
	design := vec.NewDense(2*n, n)
	for i := 0; i < 2*n; i++ {
		for j := 0; j < n; j++ {
			design.Set(i, j, rng.Normal())
		}
	}
	y := rng.NormalVector(2 * n)
	a := make([]float64, n)
	tt := make([]float64, n)
	for i := range a {
		a[i] = 1 + rng.Float64()
		tt[i] = rng.Normal()
	}

	fs := []struct {
		name string
		f    Smooth
	}{
		{"Quadratic", NewQuadratic(q, rng.NormalVector(n), 0)},
		{"LeastSquares", NewLeastSquares(design, y, 0.1)},
		{"Separable", NewSeparable(a, tt)},
	}
	x := rng.NormalVector(n)
	for _, tc := range fs {
		rg, ok := tc.f.(RangeGradSmooth)
		if !ok {
			t.Fatalf("%s does not implement RangeGradSmooth", tc.name)
		}
		for _, blk := range [][2]int{{0, n}, {3, 17}, {n - 1, n}} {
			lo, hi := blk[0], blk[1]
			dst := make([]float64, hi-lo)
			rg.GradRange(NewScratch(), dst, x, lo, hi)
			for c := lo; c < hi; c++ {
				if want := tc.f.GradComponent(c, x); dst[c-lo] != want {
					t.Errorf("%s: GradRange[%d] %v != GradComponent %v", tc.name, c, dst[c-lo], want)
				}
			}
		}
		// Full Grad must agree bit-identically too (Residual fast path).
		full := make([]float64, n)
		tc.f.Grad(full, x)
		for c := 0; c < n; c++ {
			if want := tc.f.GradComponent(c, x); full[c] != want {
				t.Errorf("%s: Grad[%d] %v != GradComponent %v", tc.name, c, full[c], want)
			}
		}
	}
}
