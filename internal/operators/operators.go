// Package operators defines the fixed-point operators F (and their
// approximations G) relaxed by the asynchronous iteration engines: affine
// contractions x -> Ax + b, gradient and proximal-gradient operators for the
// composite convex problem min f(x) + g(x) of Section V of the paper, and
// the approximate operators "generated via an iterative process" of
// Remark 2.
//
// The convergence theory of the paper applies to operators that contract in
// a weighted maximum norm; ContractionFactor / EstimateContraction certify
// or estimate that property.
package operators

import (
	"fmt"

	"repro/internal/vec"
)

// Operator is a fixed-point map F: R^n -> R^n evaluated componentwise —
// exactly the granularity at which asynchronous iterations relax.
// Implementations must be safe for concurrent read-only use: Component must
// not mutate shared state (the runtime engines call it from many
// goroutines).
type Operator interface {
	// Dim returns n.
	Dim() int
	// Component returns F_i(x). x has length Dim and must not be mutated.
	Component(i int, x []float64) float64
	// Name identifies the operator in traces and tables.
	Name() string
}

// FullApplier is an optional fast path for applying F to every component at
// once (synchronous Jacobi sweeps, reference solves).
type FullApplier interface {
	Apply(dst, x []float64)
}

// Apply evaluates F(x) into dst using the fast path when available.
func Apply(op Operator, dst, x []float64) {
	if fa, ok := op.(FullApplier); ok {
		fa.Apply(dst, x)
		return
	}
	for i := range dst {
		dst[i] = op.Component(i, x)
	}
}

// FixedPoint iterates F synchronously until ||F(x)-x||_inf <= tol or
// maxIter sweeps, returning the final iterate and whether it converged. It
// is the reference solver used to compute x* for experiments. All sweeps
// after the first are allocation-free (one internal Scratch is reused).
func FixedPoint(op Operator, x0 []float64, tol float64, maxIter int) ([]float64, bool) {
	n := op.Dim()
	x := make([]float64, n)
	copy(x, x0)
	y := make([]float64, n)
	scr := NewScratch()
	for it := 0; it < maxIter; it++ {
		ApplyInto(op, scr, y, x)
		if vec.DistInf(x, y) <= tol {
			copy(x, y)
			return x, true
		}
		x, y = y, x
	}
	return x, false
}

// Residual returns ||F(x) - x||_inf, the standard fixed-point residual.
// Operators with a whole-vector application (FullApplier) are evaluated with
// ONE application plus a subtract; the per-component loop — O(n^2) on
// coupled operators like ProxGradBF, whose every component materializes the
// full prox vector — remains only as the fallback.
func Residual(op Operator, x []float64) float64 {
	if fa, ok := op.(FullApplier); ok {
		fx := make([]float64, op.Dim())
		fa.Apply(fx, x)
		return maxAbsDiff(fx, x)
	}
	m := 0.0
	for i := 0; i < op.Dim(); i++ {
		d := op.Component(i, x) - x[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// Linear is the affine operator F(x) = Ax + b. When ||A||_u < 1 for some
// positive weight vector u it is a ||.||_u contraction and all asynchronous
// convergence results apply.
type Linear struct {
	A    *vec.Dense
	B    []float64
	name string
}

// NewLinear wraps A and b.
func NewLinear(a *vec.Dense, b []float64) *Linear {
	if a.Rows != a.Cols || a.Rows != len(b) {
		panic("operators: NewLinear needs square A matching b")
	}
	return &Linear{A: a, B: b, name: fmt.Sprintf("linear(n=%d)", len(b))}
}

func (l *Linear) Dim() int { return len(l.B) }

func (l *Linear) Component(i int, x []float64) float64 {
	return l.A.RowDotAt(i, x) + l.B[i]
}

// Apply implements FullApplier.
func (l *Linear) Apply(dst, x []float64) {
	l.A.MulVecTo(dst, x)
	for i := range dst {
		dst[i] += l.B[i]
	}
}

func (l *Linear) Name() string { return l.name }

// ContractionFactor returns ||A||_inf (u = ones), the exact max-norm
// Lipschitz constant of the affine map.
func (l *Linear) ContractionFactor() float64 { return l.A.InfNorm() }

// WeightedContractionFactor returns ||A||_u.
func (l *Linear) WeightedContractionFactor(u []float64) float64 {
	return l.A.WeightedInfNorm(u)
}

// SparseLinear is the CSR-backed affine operator for grid/graph systems.
type SparseLinear struct {
	A *vec.CSR
	B []float64
}

// NewSparseLinear wraps a sparse A and b.
func NewSparseLinear(a *vec.CSR, b []float64) *SparseLinear {
	if a.Rows != a.Cols || a.Rows != len(b) {
		panic("operators: NewSparseLinear needs square A matching b")
	}
	return &SparseLinear{A: a, B: b}
}

func (l *SparseLinear) Dim() int { return len(l.B) }

func (l *SparseLinear) Component(i int, x []float64) float64 {
	return l.A.RowDotAt(i, x) + l.B[i]
}

// Apply implements FullApplier.
func (l *SparseLinear) Apply(dst, x []float64) {
	l.A.MulVecTo(dst, x)
	for i := range dst {
		dst[i] += l.B[i]
	}
}

func (l *SparseLinear) Name() string { return fmt.Sprintf("sparseLinear(n=%d)", len(l.B)) }

// ContractionFactor returns ||A||_inf.
func (l *SparseLinear) ContractionFactor() float64 { return l.A.InfNorm() }

// JacobiFromSystem builds the Jacobi fixed-point operator for the linear
// system M z = rhs: F(x) = D^{-1}(rhs - (M - D)x), whose fixed point is the
// solution. For strictly diagonally dominant M the iteration matrix has
// ||A||_inf < 1 — the classical setting of chaotic relaxation.
func JacobiFromSystem(m *vec.Dense, rhs []float64) *Linear {
	n := m.Rows
	if m.Cols != n || len(rhs) != n {
		panic("operators: JacobiFromSystem dimension mismatch")
	}
	a := vec.NewDense(n, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		d := m.At(i, i)
		if d == 0 {
			panic("operators: JacobiFromSystem zero diagonal")
		}
		for j := 0; j < n; j++ {
			if j != i {
				a.Set(i, j, -m.At(i, j)/d)
			}
		}
		b[i] = rhs[i] / d
	}
	return NewLinear(a, b)
}

// Relaxed wraps an operator with a relaxation parameter omega in (0, 1]:
// F_omega(x) = (1-omega) x + omega F(x). Under-relaxation (omega < 1) trades
// speed for robustness; it is also how partial progress is modelled in some
// flexible-communication analyses.
type Relaxed struct {
	Inner Operator
	Omega float64
}

func (r *Relaxed) Dim() int { return r.Inner.Dim() }

func (r *Relaxed) Component(i int, x []float64) float64 {
	return (1-r.Omega)*x[i] + r.Omega*r.Inner.Component(i, x)
}

// ComponentScratch implements ScratchOperator by delegating the scratch to
// the inner operator (same slot space: Relaxed consumes no slots itself).
func (r *Relaxed) ComponentScratch(scr *Scratch, i int, x []float64) float64 {
	return (1-r.Omega)*x[i] + r.Omega*EvalComponent(r.Inner, scr, i, x)
}

// ApplyScratch implements ScratchOperator.
func (r *Relaxed) ApplyScratch(scr *Scratch, dst, x []float64) {
	ApplyInto(r.Inner, scr, dst, x)
	for i := range dst {
		dst[i] = (1-r.Omega)*x[i] + r.Omega*dst[i]
	}
}

func (r *Relaxed) Name() string {
	return fmt.Sprintf("relaxed(%s,omega=%g)", r.Inner.Name(), r.Omega)
}
