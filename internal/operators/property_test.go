package operators

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/prox"
	"repro/internal/vec"
)

// Property: the affine operator is Lipschitz in the max norm with constant
// exactly ||A||_inf: ||F(x)-F(y)||_inf <= ||A||_inf * ||x-y||_inf.
func TestLinearLipschitzProperty(t *testing.T) {
	rng := vec.NewRNG(41)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		a := vec.NewDense(n, n)
		for i := 0; i < n*n; i++ {
			a.Data[i] = rng.Normal()
		}
		op := NewLinear(a, rng.NormalVector(n))
		lip := op.ContractionFactor()
		x := rng.NormalVector(n)
		y := rng.NormalVector(n)
		fx := make([]float64, n)
		fy := make([]float64, n)
		op.Apply(fx, x)
		op.Apply(fy, y)
		lhs := vec.DistInf(fx, fy)
		rhs := lip * vec.DistInf(x, y)
		if lhs > rhs+1e-10*(1+rhs) {
			t.Fatalf("trial %d: Lipschitz violated: %v > %v", trial, lhs, rhs)
		}
	}
}

// Property: Relaxed preserves fixed points for any omega in (0, 1].
func TestRelaxedPreservesFixedPointsProperty(t *testing.T) {
	f := func(omegaRaw uint8, shift int8) bool {
		omega := 0.05 + 0.95*float64(omegaRaw)/255
		a := vec.NewDense(1, 1)
		a.Set(0, 0, 0.5)
		op := NewLinear(a, []float64{float64(shift) / 16})
		// Fixed point of 0.5x + b is 2b.
		xstar := 2 * float64(shift) / 16
		r := &Relaxed{Inner: op, Omega: omega}
		got := r.Component(0, []float64{xstar})
		return math.Abs(got-xstar) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: for separable f, the BF operator's primal at its fixed point
// coincides with the closed-form soft-threshold solution for any admissible
// step.
func TestBFPrimalClosedFormProperty(t *testing.T) {
	rng := vec.NewRNG(43)
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(4)
		a := make([]float64, n)
		tt := make([]float64, n)
		for i := range a {
			a[i] = 0.5 + 3*rng.Float64()
			tt[i] = 4*rng.Float64() - 2
		}
		lambda := 0.5 * rng.Float64()
		f := NewSeparable(a, tt)
		frac := 0.3 + 0.7*rng.Float64()
		gamma := frac * MaxStep(f)
		op := NewProxGradBF(f, prox.L1{Lambda: lambda}, gamma)
		y, ok := FixedPoint(op, make([]float64, n), 1e-13, 400000)
		if !ok {
			t.Fatalf("trial %d: no fixed point", trial)
		}
		x := op.Primal(y)
		for i := range x {
			want := softThreshold(tt[i], lambda/a[i])
			if math.Abs(x[i]-want) > 1e-7 {
				t.Fatalf("trial %d comp %d: %v, want %v", trial, i, x[i], want)
			}
		}
	}
}

func softThreshold(v, th float64) float64 {
	switch {
	case v > th:
		return v - th
	case v < -th:
		return v + th
	default:
		return 0
	}
}

// Property: FixedPoint's result has a residual consistent with its
// tolerance for contracting operators.
func TestFixedPointResidualProperty(t *testing.T) {
	rng := vec.NewRNG(44)
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(5)
		a := vec.NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.Range(-0.5, 0.5)/float64(n))
			}
		}
		op := NewLinear(a, rng.NormalVector(n))
		x, ok := FixedPoint(op, make([]float64, n), 1e-10, 100000)
		if !ok {
			t.Fatalf("trial %d: contraction did not converge", trial)
		}
		if r := Residual(op, x); r > 1e-9 {
			t.Fatalf("trial %d: residual %v", trial, r)
		}
	}
}

// Property: InnerIterated with K steps contracts at least as fast per
// application as a single step, measured against the common fixed point.
func TestInnerIteratedMonotoneInK(t *testing.T) {
	f := NewSeparable([]float64{1, 2.5}, []float64{0.4, -0.9})
	g := prox.Zero{}
	gamma := 0.5 * MaxStep(f)
	xstar, ok := FixedPoint(NewInnerIterated(f, g, gamma, 1), make([]float64, 2), 1e-13, 200000)
	if !ok {
		t.Fatal("no fixed point")
	}
	rng := vec.NewRNG(45)
	prev := math.Inf(1)
	for _, k := range []int{1, 2, 4, 8} {
		op := NewInnerIterated(f, g, gamma, k)
		c := EstimateContraction(op, xstar, Ones(2), 100, 1.0, rng)
		if c > prev+1e-12 {
			t.Fatalf("contraction not monotone in K: K=%d gives %v > %v", k, c, prev)
		}
		prev = c
	}
}

// Property: MaxStep always yields a max-norm contraction for separable f
// (factor <= 1 - gamma*mu + eps), for random curvature profiles.
func TestMaxStepContractionProperty(t *testing.T) {
	rng := vec.NewRNG(46)
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(5)
		a := make([]float64, n)
		tt := make([]float64, n)
		for i := range a {
			a[i] = 0.2 + 5*rng.Float64()
			tt[i] = rng.Normal()
		}
		f := NewSeparable(a, tt)
		gamma := MaxStep(f)
		op := NewGradOp(f, gamma)
		_, mu := f.LMu()
		bound := 1 - gamma*mu
		got := EstimateContraction(op, tt, Ones(n), 60, 2.0, rng)
		if got > bound+1e-9 {
			t.Fatalf("trial %d: contraction %v exceeds 1-gamma*mu = %v", trial, got, bound)
		}
	}
}
