package operators

import (
	"fmt"

	"repro/internal/vec"
)

// Smooth is an L-smooth, mu-strongly convex differentiable function f, the
// smooth part of problem (4) in the paper: min f(x) + g(x).
type Smooth interface {
	Dim() int
	// Value returns f(x).
	Value(x []float64) float64
	// Grad writes the full gradient into dst.
	Grad(dst, x []float64)
	// GradComponent returns (grad f(x))_i.
	GradComponent(i int, x []float64) float64
	// LMu returns the smoothness constant L and strong convexity constant
	// mu used to pick the fixed step gamma in (0, 2/(mu+L)].
	LMu() (l, mu float64)
}

// MaxStep returns the paper's largest admissible fixed step 2/(mu+L).
func MaxStep(f Smooth) float64 {
	l, mu := f.LMu()
	return 2 / (mu + l)
}

// Quadratic is f(x) = 1/2 x^T Q x - b^T x + c with symmetric positive
// definite Q. Gradient: Qx - b. Its Hessian is constant, so L and mu are
// the extreme eigenvalues (estimated via Gershgorin bounds, optionally
// sharpened by power iteration).
type Quadratic struct {
	Q      *vec.Dense
	B      []float64
	C      float64
	l, mu  float64
	bounds bool
}

// NewQuadratic builds the function and precomputes (L, mu) bounds. mu is
// the Gershgorin lower bound; callers requiring exactness should construct
// problems whose Gershgorin bounds are tight (diagonal-plus-dominance
// designs do exactly that; see the mldata package).
func NewQuadratic(q *vec.Dense, b []float64, c float64) *Quadratic {
	if q.Rows != q.Cols || q.Rows != len(b) {
		panic("operators: NewQuadratic dimension mismatch")
	}
	lo, hi := q.SymEigBounds()
	if lo <= 0 {
		// Keep going — callers may still use the function — but record a
		// conservative tiny mu so steps remain defined.
		lo = 1e-12
	}
	return &Quadratic{Q: q, B: b, C: c, l: hi, mu: lo, bounds: true}
}

func (f *Quadratic) Dim() int { return len(f.B) }

func (f *Quadratic) Value(x []float64) float64 {
	qx := f.Q.MulVec(x)
	return 0.5*vec.Dot(x, qx) - vec.Dot(f.B, x) + f.C
}

func (f *Quadratic) Grad(dst, x []float64) {
	f.Q.MulVecTo(dst, x)
	for i := range dst {
		dst[i] -= f.B[i]
	}
}

func (f *Quadratic) GradComponent(i int, x []float64) float64 {
	return f.Q.RowDotAt(i, x) - f.B[i]
}

func (f *Quadratic) LMu() (float64, float64) { return f.l, f.mu }

// SetLMu overrides the (L, mu) estimates when sharper constants are known
// analytically (e.g. separable or specially constructed problems).
func (f *Quadratic) SetLMu(l, mu float64) { f.l, f.mu = l, mu }

// Minimizer solves Qx = b directly (reference solution for experiments).
func (f *Quadratic) Minimizer() ([]float64, error) { return f.Q.SolveGaussian(f.B) }

// Separable is f(x) = sum_i (a_i/2)(x_i - t_i)^2: the fully separable
// strongly convex model the paper's Section V statement assumes ("f is
// separable"). Each coordinate is independent, the Hessian is diagonal, and
// L = max a_i, mu = min a_i hold exactly.
type Separable struct {
	A, T []float64
}

// NewSeparable builds sum_i (a_i/2)(x_i - t_i)^2; all a_i must be positive.
func NewSeparable(a, t []float64) *Separable {
	if len(a) != len(t) {
		panic("operators: NewSeparable length mismatch")
	}
	for _, v := range a {
		if v <= 0 {
			panic("operators: NewSeparable requires positive curvatures")
		}
	}
	return &Separable{A: a, T: t}
}

func (f *Separable) Dim() int { return len(f.A) }

func (f *Separable) Value(x []float64) float64 {
	s := 0.0
	for i := range x {
		d := x[i] - f.T[i]
		s += 0.5 * f.A[i] * d * d
	}
	return s
}

func (f *Separable) Grad(dst, x []float64) {
	for i := range x {
		dst[i] = f.A[i] * (x[i] - f.T[i])
	}
}

func (f *Separable) GradComponent(i int, x []float64) float64 {
	return f.A[i] * (x[i] - f.T[i])
}

func (f *Separable) LMu() (float64, float64) {
	l, mu := f.A[0], f.A[0]
	for _, v := range f.A[1:] {
		if v > l {
			l = v
		}
		if v < mu {
			mu = v
		}
	}
	return l, mu
}

// LeastSquares is f(x) = 1/(2m) ||Ax - y||^2 + (reg/2)||x||^2, the smooth
// part of ridge/lasso regression. Hessian: (1/m) A^T A + reg I (constant).
// The Gram matrix is precomputed so per-component gradients cost one row
// dot product, matching what an asynchronous coordinate worker would do.
type LeastSquares struct {
	A     *vec.Dense // m x n design matrix
	Y     []float64  // m targets
	Reg   float64    // Tikhonov term
	gram  *vec.Dense // (1/m) A^T A
	aty   []float64  // (1/m) A^T y
	l, mu float64
}

// NewLeastSquares precomputes the Gram structure and Gershgorin (L, mu)
// bounds for the Hessian (1/m) A^T A + reg I.
func NewLeastSquares(a *vec.Dense, y []float64, reg float64) *LeastSquares {
	if a.Rows != len(y) {
		panic("operators: NewLeastSquares rows != len(y)")
	}
	m := float64(a.Rows)
	g := a.AtA()
	for i := range g.Data {
		g.Data[i] /= m
	}
	aty := make([]float64, a.Cols)
	a.MulVecTransTo(aty, y)
	for i := range aty {
		aty[i] /= m
	}
	// Hessian = g + reg I.
	h := g.Clone()
	for i := 0; i < h.Rows; i++ {
		h.Set(i, i, h.At(i, i)+reg)
	}
	lo, hi := h.SymEigBounds()
	if lo <= 0 {
		lo = reg
		if lo <= 0 {
			lo = 1e-12
		}
	}
	return &LeastSquares{A: a, Y: y, Reg: reg, gram: g, aty: aty, l: hi, mu: lo}
}

func (f *LeastSquares) Dim() int { return f.A.Cols }

func (f *LeastSquares) Value(x []float64) float64 {
	m := float64(f.A.Rows)
	r := f.A.MulVec(x)
	s := 0.0
	for i := range r {
		d := r[i] - f.Y[i]
		s += d * d
	}
	return s/(2*m) + 0.5*f.Reg*vec.Dot(x, x)
}

func (f *LeastSquares) Grad(dst, x []float64) {
	f.gram.MulVecTo(dst, x)
	for i := range dst {
		// Same association order as GradComponent: (s + reg*x_i) - aty_i,
		// so full, range and componentwise gradients are bit-identical.
		dst[i] = dst[i] + f.Reg*x[i] - f.aty[i]
	}
}

func (f *LeastSquares) GradComponent(i int, x []float64) float64 {
	return f.gram.RowDotAt(i, x) + f.Reg*x[i] - f.aty[i]
}

func (f *LeastSquares) LMu() (float64, float64) { return f.l, f.mu }

// Hessian returns the (constant) Hessian (1/m)A^T A + reg I.
func (f *LeastSquares) Hessian() *vec.Dense {
	h := f.gram.Clone()
	for i := 0; i < h.Rows; i++ {
		h.Set(i, i, h.At(i, i)+f.Reg)
	}
	return h
}

// GradOp is the gradient-descent fixed-point operator F(x) = x - gamma
// grad f(x); its fixed points are the minimizers of f. When the Hessian is
// diagonally dominant the operator contracts in the max norm with factor
// <= 1 - gamma*mu for gamma <= 2/(mu+L) (Remark 1's contraction property).
type GradOp struct {
	F     Smooth
	Gamma float64
}

// NewGradOp builds the operator; gamma must be positive.
func NewGradOp(f Smooth, gamma float64) *GradOp {
	if gamma <= 0 {
		panic("operators: NewGradOp gamma must be positive")
	}
	return &GradOp{F: f, Gamma: gamma}
}

func (g *GradOp) Dim() int { return g.F.Dim() }

func (g *GradOp) Component(i int, x []float64) float64 {
	return x[i] - g.Gamma*g.F.GradComponent(i, x)
}

// Apply implements FullApplier.
func (g *GradOp) Apply(dst, x []float64) {
	g.F.Grad(dst, x)
	for i := range dst {
		dst[i] = x[i] - g.Gamma*dst[i]
	}
}

func (g *GradOp) Name() string { return fmt.Sprintf("grad(gamma=%.4g)", g.Gamma) }
