package operators

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/vec"
)

// Smooth is an L-smooth, mu-strongly convex differentiable function f, the
// smooth part of problem (4) in the paper: min f(x) + g(x).
type Smooth interface {
	Dim() int
	// Value returns f(x).
	Value(x []float64) float64
	// Grad writes the full gradient into dst.
	Grad(dst, x []float64)
	// GradComponent returns (grad f(x))_i.
	GradComponent(i int, x []float64) float64
	// LMu returns the smoothness constant L and strong convexity constant
	// mu used to pick the fixed step gamma in (0, 2/(mu+L)].
	LMu() (l, mu float64)
}

// MaxStep returns the paper's largest admissible fixed step 2/(mu+L).
func MaxStep(f Smooth) float64 {
	l, mu := f.LMu()
	return 2 / (mu + l)
}

// Quadratic is f(x) = 1/2 x^T Q x - b^T x + c with symmetric positive
// definite Q. Gradient: Qx - b. Its Hessian is constant, so L and mu are
// the extreme eigenvalues (estimated via Gershgorin bounds, optionally
// sharpened by power iteration).
type Quadratic struct {
	Q      *vec.Dense
	B      []float64
	C      float64
	l, mu  float64
	bounds bool
}

// NewQuadratic builds the function and precomputes (L, mu) bounds. mu is
// the Gershgorin lower bound; callers requiring exactness should construct
// problems whose Gershgorin bounds are tight (diagonal-plus-dominance
// designs do exactly that; see the mldata package).
func NewQuadratic(q *vec.Dense, b []float64, c float64) *Quadratic {
	if q.Rows != q.Cols || q.Rows != len(b) {
		panic("operators: NewQuadratic dimension mismatch")
	}
	lo, hi := q.SymEigBounds()
	if lo <= 0 {
		// Keep going — callers may still use the function — but record a
		// conservative tiny mu so steps remain defined.
		lo = 1e-12
	}
	return &Quadratic{Q: q, B: b, C: c, l: hi, mu: lo, bounds: true}
}

func (f *Quadratic) Dim() int { return len(f.B) }

func (f *Quadratic) Value(x []float64) float64 {
	qx := f.Q.MulVec(x)
	return 0.5*vec.Dot(x, qx) - vec.Dot(f.B, x) + f.C
}

func (f *Quadratic) Grad(dst, x []float64) {
	f.Q.MulVecTo(dst, x)
	for i := range dst {
		dst[i] -= f.B[i]
	}
}

func (f *Quadratic) GradComponent(i int, x []float64) float64 {
	return f.Q.RowDotAt(i, x) - f.B[i]
}

func (f *Quadratic) LMu() (float64, float64) { return f.l, f.mu }

// SetLMu overrides the (L, mu) estimates when sharper constants are known
// analytically (e.g. separable or specially constructed problems).
func (f *Quadratic) SetLMu(l, mu float64) { f.l, f.mu = l, mu }

// Minimizer solves Qx = b directly (reference solution for experiments).
func (f *Quadratic) Minimizer() ([]float64, error) { return f.Q.SolveGaussian(f.B) }

// Separable is f(x) = sum_i (a_i/2)(x_i - t_i)^2: the fully separable
// strongly convex model the paper's Section V statement assumes ("f is
// separable"). Each coordinate is independent, the Hessian is diagonal, and
// L = max a_i, mu = min a_i hold exactly.
type Separable struct {
	A, T []float64
}

// NewSeparable builds sum_i (a_i/2)(x_i - t_i)^2; all a_i must be positive.
func NewSeparable(a, t []float64) *Separable {
	if len(a) != len(t) {
		panic("operators: NewSeparable length mismatch")
	}
	for _, v := range a {
		if v <= 0 {
			panic("operators: NewSeparable requires positive curvatures")
		}
	}
	return &Separable{A: a, T: t}
}

func (f *Separable) Dim() int { return len(f.A) }

func (f *Separable) Value(x []float64) float64 {
	s := 0.0
	for i := range x {
		d := x[i] - f.T[i]
		s += 0.5 * f.A[i] * d * d
	}
	return s
}

func (f *Separable) Grad(dst, x []float64) {
	for i := range x {
		dst[i] = f.A[i] * (x[i] - f.T[i])
	}
}

func (f *Separable) GradComponent(i int, x []float64) float64 {
	return f.A[i] * (x[i] - f.T[i])
}

func (f *Separable) LMu() (float64, float64) {
	l, mu := f.A[0], f.A[0]
	for _, v := range f.A[1:] {
		if v > l {
			l = v
		}
		if v < mu {
			mu = v
		}
	}
	return l, mu
}

// LeastSquares is f(x) = 1/(2m) ||Ax - y||^2 + (reg/2)||x||^2, the smooth
// part of ridge/lasso regression. Hessian: (1/m) A^T A + reg I (constant).
// The Gram matrix is precomputed so per-component gradients cost one row
// dot product, matching what an asynchronous coordinate worker would do.
type LeastSquares struct {
	A     *vec.Dense // m x n design matrix
	Y     []float64  // m targets
	Reg   float64    // Tikhonov term
	gram  *vec.Dense // (1/m) A^T A
	aty   []float64  // (1/m) A^T y
	l, mu float64
}

// NewLeastSquares precomputes the Gram structure and Gershgorin (L, mu)
// bounds for the Hessian (1/m) A^T A + reg I.
func NewLeastSquares(a *vec.Dense, y []float64, reg float64) *LeastSquares {
	return newLeastSquaresEager(a, y, reg, 1)
}

// NewLeastSquaresSharded is NewLeastSquares with the Gram assembly fanned
// out over shards concurrent lane workers. The per-element sample
// accumulation order is unchanged (see vec.AtAShard), so the result — and
// every subsequent trajectory — is bit-identical to NewLeastSquares.
func NewLeastSquaresSharded(a *vec.Dense, y []float64, reg float64, shards int) *LeastSquares {
	return newLeastSquaresEager(a, y, reg, shards)
}

func newLeastSquaresEager(a *vec.Dense, y []float64, reg float64, shards int) *LeastSquares {
	if a.Rows != len(y) {
		panic("operators: NewLeastSquares rows != len(y)")
	}
	m := float64(a.Rows)
	g := ataSharded(a, shards)
	for i := range g.Data {
		g.Data[i] /= m
	}
	aty := make([]float64, a.Cols)
	a.MulVecTransTo(aty, y)
	for i := range aty {
		aty[i] /= m
	}
	// Hessian = g + reg I.
	h := g.Clone()
	for i := 0; i < h.Rows; i++ {
		h.Set(i, i, h.At(i, i)+reg)
	}
	lo, hi := h.SymEigBounds()
	if lo <= 0 {
		lo = reg
		if lo <= 0 {
			lo = 1e-12
		}
	}
	return &LeastSquares{A: a, Y: y, Reg: reg, gram: g, aty: aty, l: hi, mu: lo}
}

// ataSharded assembles A^T A, fanning Gram-row shards out over the lane
// executor when shards > 1. Bit-identical to a.AtA() for any shard count.
func ataSharded(a *vec.Dense, shards int) *vec.Dense {
	g := vec.NewDense(a.Cols, a.Cols)
	if shards > a.Cols {
		shards = a.Cols
	}
	if shards <= 1 {
		a.AtAShard(g, 0, a.Cols)
		return g
	}
	blocks := vec.Blocks(a.Cols, shards)
	var wg sync.WaitGroup
	for k := 1; k < len(blocks); k++ {
		b := blocks[k]
		wg.Add(1)
		submitLane(func() {
			defer wg.Done()
			a.AtAShard(g, b[0], b[1])
		})
	}
	a.AtAShard(g, blocks[0][0], blocks[0][1])
	wg.Wait()
	return g
}

// NewLeastSquaresLean builds the same objective WITHOUT precomputing the
// n x n Gram matrix: gradients run in residual form,
//
//	grad f(x)_c = reg*x_c + sum_h coef_h A_hc,  coef_h = ((Ax)_h - y_h)/m,
//
// so memory stays O(m·n) and a gradient range costs O(m·(b+n)) instead of
// the Gram path's O(n·b). L comes from power iteration on the implicit
// Hessian (with a 5% safety margin) and mu = reg, so the step size — and
// therefore the trajectory — differs from the Gram-precomputed form; within
// lean mode, full, range and componentwise gradients remain mutually
// bit-identical. Prefer this when n is large enough that the n^2 Gram is
// the memory bottleneck; note the per-component fallback path recomputes
// the full residual per component, so lean mode wants block evaluation.
func NewLeastSquaresLean(a *vec.Dense, y []float64, reg float64) *LeastSquares {
	if a.Rows != len(y) {
		panic("operators: NewLeastSquares rows != len(y)")
	}
	mu := reg
	if mu <= 0 {
		mu = 1e-12
	}
	l := 1.05 * leanLmax(a, reg, 60)
	if l < mu {
		l = mu
	}
	return &LeastSquares{A: a, Y: y, Reg: reg, l: l, mu: mu}
}

// leanLmax estimates the top eigenvalue of (1/m)A^T A + reg I by power
// iteration on the implicit Hessian (no Gram materialization).
func leanLmax(a *vec.Dense, reg float64, iters int) float64 {
	n := a.Cols
	if n == 0 || a.Rows == 0 {
		return reg
	}
	m := float64(a.Rows)
	x := vec.Constant(n, 1/math.Sqrt(float64(n)))
	// Slight asymmetry so we do not start orthogonal to the top eigenvector.
	for i := range x {
		x[i] *= 1 + 1e-3*float64(i%7)
	}
	r := vec.New(a.Rows)
	y := vec.New(n)
	lambda := 0.0
	for k := 0; k < iters; k++ {
		a.MulVecTo(r, x)
		a.MulVecTransTo(y, r)
		for i := range y {
			y[i] = y[i]/m + reg*x[i]
		}
		nrm := vec.Norm2(y)
		if nrm == 0 {
			return reg
		}
		for i := range x {
			x[i] = y[i] / nrm
		}
		lambda = nrm
	}
	return lambda
}

// Lean reports whether f runs in residual (Gram-free) form.
func (f *LeastSquares) Lean() bool { return f.gram == nil }

// leanCoef fills coef[h] = ((Ax)_h - y_h)/m, the shared residual pass of the
// lean gradient form.
func (f *LeastSquares) leanCoef(coef, x []float64) {
	m := float64(f.A.Rows)
	for h := range coef {
		coef[h] = (f.A.RowDotAt(h, x) - f.Y[h]) / m
	}
}

// leanGradAt returns the lean-form gradient component c given the residual
// coefficients: reg*x_c first, then the sample terms in ascending h — the
// one order all three lean gradient granularities share (vec.DotStrideAcc's
// seeded sequential chain).
func (f *LeastSquares) leanGradAt(coef, x []float64, c int) float64 {
	return vec.DotStrideAcc(f.Reg*x[c], coef, f.A.Data, c, f.A.Cols)
}

// leanGradRange is GradRange in residual form: one shared residual pass,
// then the per-component column accumulation (lane-parallel per the
// scratch's tuning; components are independent, so fan-out changes no bits).
func (f *LeastSquares) leanGradRange(scr *Scratch, dst, x []float64, lo, hi int) {
	var coef []float64
	if scr != nil {
		coef = scr.Aux(1, f.A.Rows)
	} else {
		coef = make([]float64, f.A.Rows)
	}
	f.leanCoef(coef, x)
	if scr == nil || !scr.fanOut(hi-lo) {
		for c := lo; c < hi; c++ {
			dst[c-lo] = f.leanGradAt(coef, x, c)
		}
		return
	}
	scr.parallelRows(lo, hi, func(_ *Scratch, l, h int) {
		for c := l; c < h; c++ {
			dst[c-lo] = f.leanGradAt(coef, x, c)
		}
	})
}

func (f *LeastSquares) Dim() int { return f.A.Cols }

func (f *LeastSquares) Value(x []float64) float64 {
	m := float64(f.A.Rows)
	r := f.A.MulVec(x)
	s := 0.0
	for i := range r {
		d := r[i] - f.Y[i]
		s += d * d
	}
	return s/(2*m) + 0.5*f.Reg*vec.Dot(x, x)
}

func (f *LeastSquares) Grad(dst, x []float64) {
	if f.gram == nil {
		coef := make([]float64, f.A.Rows)
		f.leanCoef(coef, x)
		for c := range dst {
			dst[c] = f.leanGradAt(coef, x, c)
		}
		return
	}
	f.gram.MulVecTo(dst, x)
	for i := range dst {
		// Same association order as GradComponent: (s + reg*x_i) - aty_i,
		// so full, range and componentwise gradients are bit-identical.
		dst[i] = dst[i] + f.Reg*x[i] - f.aty[i]
	}
}

func (f *LeastSquares) GradComponent(i int, x []float64) float64 {
	if f.gram == nil {
		coef := make([]float64, f.A.Rows)
		f.leanCoef(coef, x)
		return f.leanGradAt(coef, x, i)
	}
	return f.gram.RowDotAt(i, x) + f.Reg*x[i] - f.aty[i]
}

func (f *LeastSquares) LMu() (float64, float64) { return f.l, f.mu }

// Hessian returns the (constant) Hessian (1/m)A^T A + reg I. In lean mode
// the Gram matrix is materialized on demand (diagnostic/Newton use only).
func (f *LeastSquares) Hessian() *vec.Dense {
	h := f.gram
	if h == nil {
		h = f.A.AtA()
		m := float64(f.A.Rows)
		for i := range h.Data {
			h.Data[i] /= m
		}
	} else {
		h = h.Clone()
	}
	for i := 0; i < h.Rows; i++ {
		h.Set(i, i, h.At(i, i)+f.Reg)
	}
	return h
}

// GradOp is the gradient-descent fixed-point operator F(x) = x - gamma
// grad f(x); its fixed points are the minimizers of f. When the Hessian is
// diagonally dominant the operator contracts in the max norm with factor
// <= 1 - gamma*mu for gamma <= 2/(mu+L) (Remark 1's contraction property).
type GradOp struct {
	F     Smooth
	Gamma float64
}

// NewGradOp builds the operator; gamma must be positive.
func NewGradOp(f Smooth, gamma float64) *GradOp {
	if gamma <= 0 {
		panic("operators: NewGradOp gamma must be positive")
	}
	return &GradOp{F: f, Gamma: gamma}
}

func (g *GradOp) Dim() int { return g.F.Dim() }

func (g *GradOp) Component(i int, x []float64) float64 {
	return x[i] - g.Gamma*g.F.GradComponent(i, x)
}

// Apply implements FullApplier.
func (g *GradOp) Apply(dst, x []float64) {
	g.F.Grad(dst, x)
	for i := range dst {
		dst[i] = x[i] - g.Gamma*dst[i]
	}
}

func (g *GradOp) Name() string { return fmt.Sprintf("grad(gamma=%.4g)", g.Gamma) }
