package des

import (
	"testing"

	"repro/internal/obstacle"
	"repro/internal/operators"
)

func TestChainNeighborsShape(t *testing.T) {
	nb := ChainNeighbors(4)
	want := [][]int{{1}, {0, 2}, {1, 3}, {2}}
	for w := range want {
		if len(nb[w]) != len(want[w]) {
			t.Fatalf("worker %d neighbors = %v, want %v", w, nb[w], want[w])
		}
		for k := range want[w] {
			if nb[w][k] != want[w][k] {
				t.Fatalf("worker %d neighbors = %v, want %v", w, nb[w], want[w])
			}
		}
	}
	single := ChainNeighbors(1)
	if len(single[0]) != 0 {
		t.Error("single worker should have no neighbors")
	}
}

func TestSubdomainExchangeConvergesWithFewerMessages(t *testing.T) {
	// Strip-partitioned obstacle problem: the 5-point stencil couples only
	// adjacent strips, so chain-topology exchange suffices and sends far
	// fewer messages than all-to-all.
	p := obstacle.Membrane(12)
	ustar, ok := operators.FixedPoint(p, p.Supersolution(), 1e-11, 2000000)
	if !ok {
		t.Fatal("reference failed")
	}
	base := Config{
		Op: p, Workers: 6,
		X0: p.Supersolution(), XStar: ustar, Tol: 1e-7,
		MaxUpdates: 4000000,
		Cost:       UniformCost(1),
		Latency:    FixedLatency(0.2),
		Seed:       3,
	}
	allToAll, err := Run(base)
	if err != nil || !allToAll.Converged {
		t.Fatalf("all-to-all failed: %v", err)
	}
	chainCfg := base
	chainCfg.Neighbors = ChainNeighbors(6)
	chain, err := Run(chainCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !chain.Converged {
		t.Fatal("chain topology did not converge on a stencil operator")
	}
	if chain.MessagesSent >= allToAll.MessagesSent {
		t.Errorf("chain sent %d messages, all-to-all %d — expected fewer",
			chain.MessagesSent, allToAll.MessagesSent)
	}
	// Messages per update: chain <= 2, all-to-all = 5.
	perUpdateChain := float64(chain.MessagesSent) / float64(chain.Updates)
	if perUpdateChain > 2.01 {
		t.Errorf("chain messages per update %v > 2", perUpdateChain)
	}
}

func TestNeighborsOutOfRangeIgnored(t *testing.T) {
	p := obstacle.Membrane(8)
	ustar, ok := operators.FixedPoint(p, p.Supersolution(), 1e-11, 2000000)
	if !ok {
		t.Fatal("reference failed")
	}
	cfg := Config{
		Op: p, Workers: 2,
		X0: p.Supersolution(), XStar: ustar, Tol: 1e-6,
		MaxUpdates: 2000000,
		Neighbors:  [][]int{{1, 7, -2}, {0, 99}}, // junk entries must be ignored
		Seed:       4,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge with sanitized topology")
	}
}
