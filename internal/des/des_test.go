package des

import (
	"math"
	"strings"
	"testing"

	"repro/internal/flexible"
	"repro/internal/operators"
	"repro/internal/trace"
	"repro/internal/vec"
)

// contractingOp builds a diagonally dominant Jacobi operator with known
// fixed point.
func contractingOp(t *testing.T, n int, seed uint64) (*operators.Linear, []float64) {
	t.Helper()
	rng := vec.NewRNG(seed)
	m := vec.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m.Set(i, j, 0.4*rng.Normal())
			}
		}
	}
	for i := 0; i < n; i++ {
		off := 0.0
		for j := 0; j < n; j++ {
			if j != i {
				off += math.Abs(m.At(i, j))
			}
		}
		m.Set(i, i, 1.6*off+1)
	}
	rhs := rng.NormalVector(n)
	op := operators.JacobiFromSystem(m, rhs)
	xstar, err := m.SolveGaussian(rhs)
	if err != nil {
		t.Fatal(err)
	}
	return op, xstar
}

func x0For(xstar []float64) []float64 {
	x0 := make([]float64, len(xstar))
	for i := range x0 {
		x0[i] = xstar[i] + 10
	}
	return x0
}

func TestAsyncRunConverges(t *testing.T) {
	op, xstar := contractingOp(t, 8, 1)
	res, err := Run(Config{
		Op: op, Workers: 4, X0: x0For(xstar), XStar: xstar,
		Tol: 1e-8, MaxUpdates: 200000,
		Cost:    UniformCost(1),
		Latency: FixedLatency(0.3),
		Seed:    9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge; final error %v after %d updates", res.FinalError, res.Updates)
	}
	if res.Time <= 0 {
		t.Error("no virtual time elapsed")
	}
	if len(res.Boundaries) == 0 {
		t.Error("no macro-iterations formed")
	}
	if res.MessagesSent == 0 {
		t.Error("no messages sent")
	}
	total := 0
	for _, u := range res.UpdatesPerWorker {
		total += u
	}
	if total != res.Updates {
		t.Errorf("per-worker updates %d != total %d", total, res.Updates)
	}
}

func TestAsyncDeterministicUnderSeed(t *testing.T) {
	op, xstar := contractingOp(t, 6, 2)
	cfg := Config{
		Op: op, Workers: 3, X0: x0For(xstar), XStar: xstar,
		Tol: 1e-8, MaxUpdates: 100000,
		Latency: JitterLatency(0.1, 0.5), Seed: 4,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Updates != b.Updates || a.Time != b.Time || a.MessagesSent != b.MessagesSent {
		t.Errorf("same seed diverged: %+v vs %+v", a.Updates, b.Updates)
	}
}

func TestJitterCausesStaleDeliveries(t *testing.T) {
	op, xstar := contractingOp(t, 8, 3)
	res, err := Run(Config{
		Op: op, Workers: 4, X0: x0For(xstar), XStar: xstar,
		Tol: 1e-8, MaxUpdates: 200000,
		Cost:    UniformCost(0.5),
		Latency: JitterLatency(0.1, 5.0), // heavy jitter -> overtaking
		Seed:    11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge under jitter")
	}
	if res.MessagesStale == 0 {
		t.Error("expected stale (out-of-order) deliveries under heavy jitter")
	}
}

func TestDropsToleratedByLaterMessages(t *testing.T) {
	op, xstar := contractingOp(t, 8, 4)
	res, err := Run(Config{
		Op: op, Workers: 4, X0: x0For(xstar), XStar: xstar,
		Tol: 1e-8, MaxUpdates: 400000,
		DropProb: 0.3,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge with 30% message loss")
	}
	if res.MessagesDropped == 0 {
		t.Error("no drops recorded at 30% drop probability")
	}
}

func TestSyncRunConverges(t *testing.T) {
	op, xstar := contractingOp(t, 8, 6)
	res, err := RunSync(Config{
		Op: op, Workers: 4, X0: x0For(xstar), XStar: xstar,
		Tol: 1e-8, MaxUpdates: 400000,
		Cost:    UniformCost(1),
		Latency: FixedLatency(0.3),
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("sync run did not converge; error %v", res.FinalError)
	}
	if res.Rounds == 0 || res.Time <= 0 {
		t.Error("no rounds executed")
	}
}

func TestSyncIdleTimeUnderImbalance(t *testing.T) {
	op, xstar := contractingOp(t, 8, 8)
	costs := []float64{1, 1, 1, 4} // worker 3 is 4x slower
	res, err := RunSync(Config{
		Op: op, Workers: 4, X0: x0For(xstar), XStar: xstar,
		Tol: 1e-8, MaxUpdates: 400000,
		Cost:    HeterogeneousCost(costs),
		Latency: FixedLatency(0.1),
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	// Fast workers idle ~3 units + latency per round; the slow one only the
	// latency.
	if res.IdleTime[0] <= res.IdleTime[3] {
		t.Errorf("fast worker idle %v should exceed slow worker idle %v",
			res.IdleTime[0], res.IdleTime[3])
	}
}

func TestAsyncBeatsSyncUnderImbalance(t *testing.T) {
	// The paper's Section II claim: asynchronous iterations suppress
	// synchronization idle time and cope with load imbalance.
	op, xstar := contractingOp(t, 16, 9)
	costs := []float64{1, 1, 1, 6}
	base := Config{
		Op: op, Workers: 4, X0: x0For(xstar), XStar: xstar,
		Tol: 1e-8, MaxUpdates: 1000000,
		Cost:    HeterogeneousCost(costs),
		Latency: FixedLatency(0.2),
		Seed:    10,
	}
	syncRes, err := RunSync(base)
	if err != nil {
		t.Fatal(err)
	}
	asyncRes, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if !syncRes.Converged || !asyncRes.Converged {
		t.Fatalf("convergence: sync %v async %v", syncRes.Converged, asyncRes.Converged)
	}
	if asyncRes.Time >= syncRes.Time {
		t.Errorf("async time %v should beat sync %v under imbalance",
			asyncRes.Time, syncRes.Time)
	}
}

func TestFlexiblePartialsAreSentAndHelp(t *testing.T) {
	op, xstar := contractingOp(t, 12, 12)
	base := Config{
		Op: op, Workers: 4, X0: x0For(xstar), XStar: xstar,
		Tol: 1e-8, MaxUpdates: 1000000,
		Cost:    UniformCost(4),     // long phases
		Latency: FixedLatency(0.05), // fast links
		Seed:    13,
	}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	flexCfg := base
	flexCfg.Flexible = flexible.Uniform(4)
	lg := &trace.Log{}
	flexCfg.Trace = lg
	flex, err := Run(flexCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Converged || !flex.Converged {
		t.Fatal("runs did not converge")
	}
	partials := 0
	for _, e := range lg.Events {
		if e.Kind == trace.PartialSend {
			partials++
		}
	}
	if partials == 0 {
		t.Fatal("no partial updates were sent in flexible mode")
	}
	if flex.Time > plain.Time*1.05 {
		t.Errorf("flexible time %v notably worse than plain %v", flex.Time, plain.Time)
	}
}

func TestTraceGanttRenders(t *testing.T) {
	op, xstar := contractingOp(t, 2, 14)
	lg := &trace.Log{}
	_, err := Run(Config{
		Op: op, Workers: 2, X0: x0For(xstar), XStar: xstar,
		MaxUpdates: 10,
		Cost:       HeterogeneousCost([]float64{1, 1.7}),
		Latency:    FixedLatency(0.2),
		Seed:       15,
		Trace:      lg,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := trace.RenderGantt(lg, 72)
	if !strings.Contains(out, "P0") || !strings.Contains(out, "P1") {
		t.Errorf("Gantt missing lanes:\n%s", out)
	}
	if !strings.Contains(out, "──>") {
		t.Errorf("Gantt missing messages:\n%s", out)
	}
}

func TestBaudetCostUnboundedDelayShape(t *testing.T) {
	// Reproduce the paper's Section II example: P0 updates in unit time,
	// P1's k-th phase takes k units. The label delay of P1's component as
	// seen in the global sequence grows ~ sqrt(j).
	op, xstar := contractingOp(t, 2, 16)
	res, err := Run(Config{
		Op: op, Workers: 2, X0: x0For(xstar), XStar: xstar,
		MaxUpdates: 3000,
		Cost: func(w, k int) float64 {
			if w == 0 {
				return 1
			}
			return float64(k)
		},
		Latency: FixedLatency(0.01),
		Seed:    17,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Delay observed by worker 0's late phases: j - minLabel grows without
	// bound but sublinearly.
	var lastDelay float64
	for _, r := range res.Records {
		if r.Worker == 0 && r.J > 2 {
			lastDelay = float64(r.J - r.MinLabel)
		}
	}
	if lastDelay < 10 {
		t.Errorf("expected growing delay, got %v", lastDelay)
	}
	j := float64(res.Records[len(res.Records)-1].J)
	if lastDelay > j/2 {
		t.Errorf("delay %v not sublinear in j=%v", lastDelay, j)
	}
}

func TestRunValidation(t *testing.T) {
	op, _ := contractingOp(t, 4, 18)
	if _, err := Run(Config{}); err == nil {
		t.Error("expected error without operator")
	}
	if _, err := Run(Config{Op: op, Workers: 0}); err == nil {
		t.Error("expected error for zero workers")
	}
	if _, err := Run(Config{Op: op, Workers: 2, Tol: 1e-6}); err == nil {
		t.Error("expected error for Tol without XStar")
	}
	if _, err := RunSync(Config{Op: op, Workers: 2, Tol: 1e-6}); err == nil {
		t.Error("expected sync error for Tol without XStar")
	}
}

func TestMaxTimeBound(t *testing.T) {
	op, xstar := contractingOp(t, 4, 19)
	res, err := Run(Config{
		Op: op, Workers: 2, X0: x0For(xstar),
		MaxUpdates: 1000000, MaxTime: 50,
		Cost: UniformCost(1), Seed: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time > 51 {
		t.Errorf("virtual time %v exceeded MaxTime", res.Time)
	}
}

func TestApplyStaleRegressesViews(t *testing.T) {
	op, xstar := contractingOp(t, 8, 21)
	cfg := Config{
		Op: op, Workers: 4, X0: x0For(xstar), XStar: xstar,
		Tol: 1e-8, MaxUpdates: 500000,
		Latency: JitterLatency(0.1, 4.0),
		Seed:    22, ApplyStale: true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge with stale application (totally async regime)")
	}
}
