package des

import (
	"testing"

	"repro/internal/macroiter"
	"repro/internal/vec"
)

// Invariant battery: run the simulator across a grid of configurations and
// assert structural properties that must hold regardless of parameters.
func TestSimulatorInvariants(t *testing.T) {
	op, xstar := contractingOp(t, 12, 30)
	rng := vec.NewRNG(31)
	for trial := 0; trial < 12; trial++ {
		workers := 1 + rng.Intn(6)
		drop := 0.4 * rng.Float64()
		cfg := Config{
			Op: op, Workers: workers, X0: x0For(xstar), XStar: xstar,
			MaxUpdates: 400 + rng.Intn(400),
			Cost:       UniformCost(0.5 + rng.Float64()),
			Latency:    JitterLatency(0.05, 2*rng.Float64()),
			DropProb:   drop,
			Seed:       rng.Uint64(),
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}

		// Records have strictly increasing J starting at 1.
		for k, r := range res.Records {
			if r.J != k+1 {
				t.Fatalf("trial %d: record %d has J=%d", trial, k, r.J)
			}
			if r.MinLabel < 0 || r.MinLabel >= r.J {
				t.Fatalf("trial %d: record %d label %d outside [0,%d)", trial, k, r.MinLabel, r.J)
			}
			if r.Worker < 0 || r.Worker >= workers {
				t.Fatalf("trial %d: record %d worker %d", trial, k, r.Worker)
			}
		}
		// Per-worker updates sum to total.
		sum := 0
		for _, u := range res.UpdatesPerWorker {
			sum += u
		}
		if sum != res.Updates || res.Updates != len(res.Records) {
			t.Fatalf("trial %d: updates %d, perWorker sum %d, records %d",
				trial, res.Updates, sum, len(res.Records))
		}
		// Message accounting: dropped <= sent; stale <= sent.
		if res.MessagesDropped > res.MessagesSent || res.MessagesStale > res.MessagesSent {
			t.Fatalf("trial %d: message counts inconsistent: %+v", trial, res)
		}
		if drop == 0 && res.MessagesDropped != 0 {
			t.Fatalf("trial %d: drops without drop probability", trial)
		}
		// Error trace timestamps nondecreasing.
		for k := 1; k < len(res.ErrorTrace); k++ {
			if res.ErrorTrace[k].Time < res.ErrorTrace[k-1].Time {
				t.Fatalf("trial %d: error trace time regressed", trial)
			}
		}
		// Boundaries strictly increasing and within run length.
		checkBoundaries := func(name string, bs []int) {
			prev := 0
			for _, b := range bs {
				if b <= prev || b > res.Updates {
					t.Fatalf("trial %d: %s boundary %d invalid (prev %d, updates %d)",
						trial, name, b, prev, res.Updates)
				}
				prev = b
			}
		}
		checkBoundaries("def2", res.Boundaries)
		checkBoundaries("strict", res.StrictBoundaries)
		checkBoundaries("epoch", res.Epochs)
		// Strict windows never admit pre-previous-window reads.
		if v := macroiter.EpochStaleness(res.StrictBoundaries, res.Records); v != 0 {
			t.Fatalf("trial %d: strict staleness %d", trial, v)
		}
	}
}

// The synchronous driver obeys the same structural rules.
func TestSyncInvariants(t *testing.T) {
	op, xstar := contractingOp(t, 8, 32)
	res, err := RunSync(Config{
		Op: op, Workers: 4, X0: x0For(xstar), XStar: xstar, Tol: 1e-8,
		MaxUpdates: 400000,
		Cost:       HeterogeneousCost([]float64{1, 2, 1, 3}),
		Latency:    FixedLatency(0.25),
		Seed:       33,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	// Compute + idle must equal rounds' critical path per worker.
	for w := range res.ComputeTime {
		total := res.ComputeTime[w] + res.IdleTime[w]
		if diff := total - res.Time; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("worker %d: compute+idle %v != total %v", w, total, res.Time)
		}
	}
	// Every round is one macro-iteration with fresh labels.
	if len(res.Records) != res.Rounds {
		t.Errorf("records %d != rounds %d", len(res.Records), res.Rounds)
	}
	bs := macroiter.Boundaries(op.Dim(), res.Records)
	if len(bs) != res.Rounds {
		t.Errorf("macro boundaries %d != rounds %d", len(bs), res.Rounds)
	}
}

// Determinism across the full configuration surface: identical configs give
// identical results, including with flexible schedules and topologies.
func TestFullConfigDeterminism(t *testing.T) {
	op, xstar := contractingOp(t, 10, 34)
	cfg := Config{
		Op: op, Workers: 5, X0: x0For(xstar), XStar: xstar, Tol: 1e-7,
		MaxUpdates: 2000000,
		Cost:       HeterogeneousCost([]float64{1, 2, 0.5, 1.5, 1}),
		Latency:    JitterLatency(0.1, 1.0),
		DropProb:   0.15,
		Seed:       35,
		Neighbors:  ChainNeighbors(5),
	}
	// Chain topology on a dense operator will not converge to tolerance
	// (non-neighbours never exchange); bound the run by updates instead.
	cfg.Tol = 0
	cfg.XStar = nil
	cfg.MaxUpdates = 600
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Time != b.Time || a.MessagesSent != b.MessagesSent ||
		a.MessagesDropped != b.MessagesDropped || a.Updates != b.Updates {
		t.Error("identical configurations diverged")
	}
	if !vec.Equal(a.X, b.X, 0) {
		t.Error("final iterates differ")
	}
}
