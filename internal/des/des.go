// Package des is a deterministic discrete-event simulator of parallel or
// distributed asynchronous iterations on heterogeneous hardware. It is the
// substitution for the paper's supercomputer and grid testbeds (Cray T3E,
// IBM SP4, Tnode, GRID5000, Planetlab): workers with configurable per-update
// compute costs relax their blocks of the iterate vector and exchange
// values over links with configurable latency, loss, and reordering —
// reproducing exactly the orderings (unbounded delays, out-of-order
// messages, load imbalance) that the paper's claims are about, under a
// virtual clock, with reproducible seeds.
//
// Two drivers are provided: the free-running asynchronous engine in this
// file (computations covered by communication, no barriers — Fig. 1), with
// optional flexible communication (partial updates published mid-phase —
// Fig. 2), and the barrier-synchronous baseline in sync.go.
package des

import (
	"container/heap"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/flexible"
	"repro/internal/macroiter"
	"repro/internal/operators"
	"repro/internal/trace"
	"repro/internal/vec"
)

// CostFunc returns the duration of the k-th updating phase (k = 1, 2, ...)
// on worker w. Baudet's example uses cost(0,k)=1, cost(1,k)=k.
type CostFunc func(w, k int) float64

// LatencyFunc returns the transit time of a message from worker `from` to
// worker `to`; rng allows stochastic latencies (which produce genuine
// out-of-order deliveries when messages overtake each other).
type LatencyFunc func(from, to int, rng *vec.RNG) float64

// UniformCost returns a CostFunc with a fixed per-phase duration per worker.
func UniformCost(d float64) CostFunc { return func(w, k int) float64 { return d } }

// HeterogeneousCost gives worker w the fixed per-phase duration costs[w].
func HeterogeneousCost(costs []float64) CostFunc {
	return func(w, k int) float64 { return costs[w] }
}

// FixedLatency returns a constant-latency link model.
func FixedLatency(d float64) LatencyFunc {
	return func(from, to int, rng *vec.RNG) float64 { return d }
}

// JitterLatency returns base + uniform[0, jitter) latency; jitter > base
// causes frequent message overtaking (out-of-order delivery).
func JitterLatency(base, jitter float64) LatencyFunc {
	return func(from, to int, rng *vec.RNG) float64 { return base + jitter*rng.Float64() }
}

// ChainNeighbors returns the 1-D sub-domain topology for p workers: worker
// w exchanges with w-1 and w+1 only. With contiguous block partitions of a
// stencil operator (strips of a grid), this is exactly the boundary
// exchange of the sub-domain methods in [26].
func ChainNeighbors(p int) [][]int {
	nb := make([][]int, p)
	for w := 0; w < p; w++ {
		if w > 0 {
			nb[w] = append(nb[w], w-1)
		}
		if w < p-1 {
			nb[w] = append(nb[w], w+1)
		}
	}
	return nb
}

// Config describes a simulated run.
type Config struct {
	// Op is the fixed-point operator; components are partitioned among
	// workers.
	Op operators.Operator
	// Workers is the number of simulated processors (>= 1).
	Workers int
	// X0 is the initial iterate (defaults to zero).
	X0 []float64
	// XStar enables error tracking and error-based stopping.
	XStar []float64
	// Tol stops the run when ||x - x*||_inf <= Tol (XStar required).
	Tol float64
	// MaxUpdates bounds the total number of updating phases.
	MaxUpdates int
	// MaxTime bounds the virtual clock.
	MaxTime float64
	// Cost is the per-phase compute model (default UniformCost(1)).
	Cost CostFunc
	// Latency is the link model (default FixedLatency(0.1)).
	Latency LatencyFunc
	// DropProb is the iid probability that a message is lost in transit
	// (transient faults; later messages cover for them).
	DropProb float64
	// Flexible publishes partial updates at the given phase fractions
	// (hatched arrows of Fig. 2). Empty schedule = plain async.
	Flexible flexible.Schedule
	// ApplyStale controls whether a message carrying an older label than
	// the receiver's current view still overwrites it (true models
	// unordered transports where late messages regress the view; false
	// models version-checked receivers).
	ApplyStale bool
	// Neighbors restricts each worker's broadcasts to the listed peers —
	// the sub-domain exchange pattern of [26] (a worker only ships its
	// block to workers whose stencils read it). nil means all-to-all.
	// Neighbors[w] lists the recipients of worker w's updates; it is the
	// caller's responsibility that the operator's coupling respects the
	// topology (a worker never learns non-neighbour components).
	Neighbors [][]int
	// Seed drives all randomness.
	Seed uint64
	// Trace, when non-nil, records update phases and messages.
	Trace *trace.Log
	// Scratches, when non-nil, supplies one reusable operator scratch per
	// worker (index = worker id) so repeated runs of the same shape share
	// hot-path buffers. Missing or short slices fall back to fresh
	// per-worker scratches.
	Scratches []*operators.Scratch
	// Tuning is installed on every worker scratch (supplied or fresh), so
	// pooled scratches reused across runs always carry this run's knobs.
	Tuning operators.Tuning
	// Done, when non-nil, cancels the run: the event loop stops at the
	// next event and the result reports Cancelled and not Converged.
	// Cancellation does not perturb the trajectory up to the stopping
	// point — a run that is not cancelled is bit-identical to one executed
	// without Done.
	Done <-chan struct{}
	// Progress, when non-nil, is incremented once per completed updating
	// phase so external observers can watch the run live.
	Progress *atomic.Int64
}

// workerScratch returns the caller-supplied scratch for worker w or a
// fresh one, with the run's tuning installed.
func (c *Config) workerScratch(w int) *operators.Scratch {
	scr := operators.NewScratch()
	if w < len(c.Scratches) && c.Scratches[w] != nil {
		scr = c.Scratches[w]
	}
	scr.SetTuning(c.Tuning)
	return scr
}

// Result reports a simulated run.
type Result struct {
	// Time is the virtual time at which the run stopped.
	Time float64
	// Updates is the number of completed updating phases.
	Updates int
	// Converged reports whether Tol was reached.
	Converged bool
	// FinalError is ||x - x*||_inf at stop (when XStar given).
	FinalError float64
	// X is the final iterate (owners' authoritative values).
	X []float64
	// Records feeds macro-iteration/epoch analysis.
	Records []macroiter.Record
	// Boundaries, StrictBoundaries, Epochs are the derived sequences.
	Boundaries, StrictBoundaries, Epochs []int
	// MessagesSent / MessagesDropped / MessagesStale count transport
	// events (stale = delivered carrying an older label than the view).
	MessagesSent, MessagesDropped, MessagesStale int
	// UpdatesPerWorker counts completed phases per worker.
	UpdatesPerWorker []int
	// ErrorTrace samples (time, error) after each completion (XStar given).
	ErrorTrace []TimedError
	// Cancelled reports that Config.Done fired before the run converged or
	// exhausted its budgets.
	Cancelled bool
}

// TimedError is an (virtual time, max-norm error) sample.
type TimedError struct {
	Time  float64 `json:"time"`
	Error float64 `json:"error"`
}

type eventKind int

const (
	evComplete eventKind = iota
	evDeliver
	evPartial
)

type message struct {
	from, to int
	comps    []int
	vals     []float64
	label    int
	partial  bool
	frac     float64
	iter     int // producing update's sequence number (for traces)
}

type event struct {
	time float64
	tick int // FIFO tie-break for determinism
	kind eventKind
	w    int // worker for evComplete
	msg  *message
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].tick < h[j].tick
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// pool recycles events and messages. A simulated run schedules one event
// per update phase, per partial publication and per message delivery —
// pooling turns that steady stream of small heap objects into free-list
// pops. The simulator is single-threaded, so no locking is needed.
type pool struct {
	events []*event
	msgs   []*message
}

func (p *pool) getEvent() *event {
	if n := len(p.events); n > 0 {
		e := p.events[n-1]
		p.events = p.events[:n-1]
		*e = event{}
		return e
	}
	return &event{} //repro:alloc-ok pool miss; steady state pops the free list
}

// putEvent recycles e and any message it carries.
func (p *pool) putEvent(e *event) {
	if e.msg != nil {
		p.putMsg(e.msg)
		e.msg = nil
	}
	p.events = append(p.events, e)
}

func (p *pool) getMsg() *message {
	if n := len(p.msgs); n > 0 {
		m := p.msgs[n-1]
		p.msgs = p.msgs[:n-1]
		return m
	}
	return &message{} //repro:alloc-ok pool miss; steady state pops the free list
}

func (p *pool) putMsg(m *message) {
	*m = message{vals: m.vals[:0]} // keep vals capacity; comps is shared, not owned
	p.msgs = append(p.msgs, m)
}

type worker struct {
	id      int
	comps   []int     // owned components; never mutated after init (shared with Records and messages)
	view    []float64 // local copy of the full iterate vector
	version []int     // label (producer seq) of each view component
	scr     *operators.Scratch
	// In-progress phase (buffers preallocated once per worker):
	phaseK        int // per-worker phase counter
	phaseStart    float64
	phaseMinLabel int
	phaseOld      []float64 // own values at phase start
	phaseOut      []float64 // computed results (applied at completion)
	partialVals   []float64 // interpolation buffer for flexible publications
}

// Run executes the asynchronous discrete-event simulation.
func Run(cfg Config) (*Result, error) {
	if cfg.Op == nil {
		return nil, errors.New("des: Config.Op is required")
	}
	n := cfg.Op.Dim()
	if cfg.Workers < 1 {
		return nil, errors.New("des: need at least one worker")
	}
	if cfg.Workers > n {
		cfg.Workers = n
	}
	x0 := cfg.X0
	if x0 == nil {
		x0 = make([]float64, n)
	}
	if len(x0) != n {
		return nil, fmt.Errorf("des: X0 length %d, want %d", len(x0), n)
	}
	if cfg.Cost == nil {
		cfg.Cost = UniformCost(1)
	}
	if cfg.Latency == nil {
		cfg.Latency = FixedLatency(0.1)
	}
	if cfg.MaxUpdates <= 0 {
		cfg.MaxUpdates = 100000
	}
	if cfg.Tol > 0 && cfg.XStar == nil {
		return nil, errors.New("des: Tol requires XStar")
	}

	rng := vec.NewRNG(cfg.Seed)
	blocks := vec.Blocks(n, cfg.Workers)
	workers := make([]*worker, len(blocks))
	globalX := vec.Clone(x0)
	res := &Result{UpdatesPerWorker: make([]int, len(blocks))}

	var h eventHeap
	tick := 0
	pl := &pool{}
	push := func(e *event) {
		e.tick = tick
		tick++
		heap.Push(&h, e)
	}

	// Initialize workers and their first phases.
	for w, b := range blocks {
		comps := make([]int, 0, b[1]-b[0])
		for c := b[0]; c < b[1]; c++ {
			comps = append(comps, c)
		}
		scr := cfg.workerScratch(w)
		wk := &worker{
			id:          w,
			comps:       comps,
			view:        vec.Clone(x0),
			version:     make([]int, n),
			scr:         scr,
			phaseOld:    make([]float64, len(comps)),
			phaseOut:    make([]float64, len(comps)),
			partialVals: make([]float64, len(comps)),
		}
		workers[w] = wk
		startPhase(wk, cfg, rng, 0, push, pl)
	}

	seq := 0
	stopped := false
	for h.Len() > 0 && !stopped {
		if cfg.Done != nil {
			select {
			case <-cfg.Done:
				res.Cancelled = true
				stopped = true
			default:
			}
			if stopped {
				break
			}
		}
		e := heap.Pop(&h).(*event)
		if cfg.MaxTime > 0 && e.time > cfg.MaxTime {
			res.Time = cfg.MaxTime
			break
		}
		switch e.kind {
		case evComplete:
			wk := workers[e.w]
			seq++
			j := seq
			// Commit the block.
			for bi, c := range wk.comps {
				wk.view[c] = wk.phaseOut[bi]
				wk.version[c] = j
				globalX[c] = wk.phaseOut[bi]
			}
			res.Updates++
			res.UpdatesPerWorker[wk.id]++
			if cfg.Progress != nil {
				cfg.Progress.Add(1)
			}
			// wk.comps is immutable after init, so Records can share it
			// instead of copying it once per update.
			res.Records = append(res.Records, macroiter.Record{
				J: j, S: wk.comps,
				MinLabel: wk.phaseMinLabel, Worker: wk.id,
			})
			if cfg.Trace != nil {
				cfg.Trace.Add(trace.Event{
					Kind: trace.UpdatePhase, Worker: wk.id,
					Start: wk.phaseStart, End: e.time, Iter: j, Comp: wk.id,
				})
			}
			// Broadcast the completed block.
			sendBlock(cfg, rng, push, pl, workers, wk, e.time, j, wk.phaseOut, false, 1, res)
			// Track error / stopping.
			if cfg.XStar != nil {
				err := vec.DistInf(globalX, cfg.XStar)
				res.ErrorTrace = append(res.ErrorTrace, TimedError{Time: e.time, Error: err})
				if cfg.Tol > 0 && err <= cfg.Tol {
					res.Converged = true
					res.Time = e.time
					stopped = true
					break
				}
			}
			if res.Updates >= cfg.MaxUpdates {
				res.Time = e.time
				stopped = true
				break
			}
			// Next phase begins immediately (no idle time: Section II).
			startPhase(wk, cfg, rng, e.time, push, pl)
			res.Time = e.time

		case evDeliver:
			m := e.msg
			dst := workers[m.to]
			stale := false
			for k, c := range m.comps {
				if m.label >= dst.version[c] {
					dst.view[c] = m.vals[k]
					dst.version[c] = m.label
				} else {
					stale = true
					if cfg.ApplyStale {
						dst.view[c] = m.vals[k]
						dst.version[c] = m.label
					}
				}
			}
			if stale {
				res.MessagesStale++
			}
			if cfg.Trace != nil {
				cfg.Trace.Add(trace.Event{
					Kind: trace.Deliver, Worker: m.to, Peer: m.from,
					Start: e.time, End: e.time, Iter: m.iter, Comp: m.comps[0],
				})
			}

		case evPartial:
			// Scheduled mid-phase publication: emit interpolated values.
			wk := workers[e.w]
			m := e.msg // carries frac in frac field; comps/vals filled here
			frac := m.frac
			vals := wk.partialVals
			for bi := range wk.comps {
				vals[bi] = flexible.Interpolate(wk.phaseOld[bi], wk.phaseOut[bi], frac)
			}
			// Partial updates carry the label of the last *completed*
			// update of this block (conservative for macro-iterations).
			label := wk.version[wk.comps[0]]
			sendVals(cfg, rng, push, pl, workers, wk, e.time, label, wk.comps, vals, true, frac, seq+1, res)
		}
		pl.putEvent(e)
	}

	res.X = globalX
	if cfg.XStar != nil {
		res.FinalError = vec.DistInf(globalX, cfg.XStar)
	}
	res.Boundaries = macroiter.Boundaries(n, res.Records)
	res.StrictBoundaries = macroiter.StrictBoundaries(n, res.Records)
	res.Epochs = macroiter.EpochBoundaries(len(blocks), res.Records)
	return res, nil
}

// startPhase snapshots the worker's view, computes its next block values and
// schedules the completion (and any flexible partial publications). The
// computation reads wk.view directly: the event loop is single-threaded and
// the results are committed via phaseOut only at completion, so no defensive
// copy is needed and a phase allocates nothing in steady state.
//
//repro:hotpath
func startPhase(wk *worker, cfg Config, rng *vec.RNG, now float64, push func(*event), pl *pool) {
	wk.phaseK++
	wk.phaseStart = now
	minLabel := int(^uint(0) >> 1)
	for _, v := range wk.version {
		if v < minLabel {
			minLabel = v
		}
	}
	wk.phaseMinLabel = minLabel
	for bi, c := range wk.comps {
		wk.phaseOld[bi] = wk.view[c]
	}
	// comps is the worker's contiguous block [comps[0], comps[0]+len), so
	// the whole phase is one coupled-operator block pass.
	lo := wk.comps[0]
	operators.EvalBlock(cfg.Op, wk.scr, lo, lo+len(wk.comps), wk.view, wk.phaseOut)
	d := cfg.Cost(wk.id, wk.phaseK)
	if d <= 0 {
		d = 1e-9
	}
	// Flexible: publish partials mid-phase.
	for _, f := range cfg.Flexible.Fracs {
		if f < 1 { // the completed value is broadcast at phase end anyway
			m := pl.getMsg()
			m.frac = f
			e := pl.getEvent()
			e.time, e.kind, e.w, e.msg = now+f*d, evPartial, wk.id, m
			push(e)
		}
	}
	e := pl.getEvent()
	e.time, e.kind, e.w = now+d, evComplete, wk.id
	push(e)
}

// sendBlock broadcasts completed block values to every other worker.
func sendBlock(cfg Config, rng *vec.RNG, push func(*event), pl *pool, workers []*worker,
	wk *worker, now float64, label int, vals []float64, partial bool, frac float64, res *Result) {
	sendVals(cfg, rng, push, pl, workers, wk, now, label, wk.comps, vals, partial, frac, label, res)
}

func sendVals(cfg Config, rng *vec.RNG, push func(*event), pl *pool, workers []*worker,
	wk *worker, now float64, label int, comps []int, vals []float64,
	partial bool, frac float64, iter int, res *Result) {
	// Iterate recipients without materializing a slice (a broadcast happens
	// once per update phase; building a recipients slice here would be a
	// per-update allocation under restricted topologies).
	nRecip := len(workers)
	topo := cfg.Neighbors != nil && wk.id < len(cfg.Neighbors)
	if topo {
		nRecip = len(cfg.Neighbors[wk.id])
	}
	for r := 0; r < nRecip; r++ {
		q := r
		if topo {
			q = cfg.Neighbors[wk.id][r]
			if q < 0 || q >= len(workers) {
				continue
			}
		}
		peer := workers[q]
		if peer.id == wk.id {
			continue
		}
		res.MessagesSent++
		if cfg.DropProb > 0 && rng.Float64() < cfg.DropProb {
			res.MessagesDropped++
			if cfg.Trace != nil {
				cfg.Trace.Add(trace.Event{
					Kind: trace.Drop, Worker: wk.id, Peer: peer.id,
					Start: now, End: now, Iter: iter, Comp: comps[0],
				})
			}
			continue
		}
		lat := cfg.Latency(wk.id, peer.id, rng)
		if lat < 0 {
			lat = 0
		}
		m := pl.getMsg()
		m.from, m.to = wk.id, peer.id
		m.comps = comps // owner's comps slice is immutable; share, don't copy
		m.vals = append(m.vals[:0], vals...)
		m.label, m.partial, m.frac, m.iter = label, partial, frac, iter
		if cfg.Trace != nil {
			kind := trace.Send
			if partial {
				kind = trace.PartialSend
			}
			cfg.Trace.Add(trace.Event{
				Kind: kind, Worker: wk.id, Peer: peer.id,
				Start: now, End: now, Iter: iter, Comp: comps[0], Frac: frac,
			})
		}
		ev := pl.getEvent()
		ev.time, ev.kind, ev.msg = now+lat, evDeliver, m
		push(ev)
	}
}
