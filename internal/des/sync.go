package des

import (
	"errors"

	"repro/internal/macroiter"
	"repro/internal/operators"
	"repro/internal/vec"
)

// SyncResult reports a barrier-synchronous simulated run (the baseline the
// paper's asynchronous methods are compared against).
type SyncResult struct {
	// Time is the virtual time consumed.
	Time float64
	// Rounds is the number of barrier rounds executed.
	Rounds int
	// Converged reports whether Tol was reached.
	Converged bool
	// FinalError is ||x - x*||_inf at stop.
	FinalError float64
	// X is the final iterate.
	X []float64
	// IdleTime[w] accumulates the barrier wait of worker w: the difference
	// between the round critical path and the worker's own compute time —
	// exactly the synchronization penalty asynchronous iterations remove.
	IdleTime []float64
	// ComputeTime[w] accumulates pure compute time per worker.
	ComputeTime []float64
	// ErrorTrace samples (time, error) per round.
	ErrorTrace []TimedError
	// Records allows macro-iteration analysis (every round is one
	// macro-iteration: all components, fresh labels).
	Records []macroiter.Record
	// Cancelled reports that Config.Done fired before the run converged or
	// exhausted its budgets.
	Cancelled bool
}

// RunSync executes the barrier-synchronous Jacobi baseline under the same
// cost/latency models as the asynchronous engine: in each round every
// worker relaxes its block from the previous round's full iterate, then all
// values are exchanged; the round lasts max_w cost + max link latency, and
// faster workers idle at the barrier.
func RunSync(cfg Config) (*SyncResult, error) {
	if cfg.Op == nil {
		return nil, errors.New("des: Config.Op is required")
	}
	n := cfg.Op.Dim()
	if cfg.Workers < 1 {
		return nil, errors.New("des: need at least one worker")
	}
	if cfg.Workers > n {
		cfg.Workers = n
	}
	x0 := cfg.X0
	if x0 == nil {
		x0 = make([]float64, n)
	}
	if cfg.Cost == nil {
		cfg.Cost = UniformCost(1)
	}
	if cfg.Latency == nil {
		cfg.Latency = FixedLatency(0.1)
	}
	if cfg.MaxUpdates <= 0 {
		cfg.MaxUpdates = 100000
	}
	if cfg.Tol > 0 && cfg.XStar == nil {
		return nil, errors.New("des: Tol requires XStar")
	}

	rng := vec.NewRNG(cfg.Seed)
	blocks := vec.Blocks(n, cfg.Workers)
	p := len(blocks)
	res := &SyncResult{
		IdleTime:    make([]float64, p),
		ComputeTime: make([]float64, p),
		X:           vec.Clone(x0),
	}
	x := vec.Clone(x0)
	next := make([]float64, n)
	allComps := make([]int, n)
	for i := range allComps {
		allComps[i] = i
	}
	// Per-worker scratches, as in the asynchronous engine (the barrier
	// baseline must not carry an allocation tax the async side has shed, or
	// every sync-vs-async comparison would be skewed).
	scrs := make([]*operators.Scratch, p)
	for w := range scrs {
		scrs[w] = cfg.workerScratch(w)
	}
	costs := make([]float64, p)

	maxRounds := cfg.MaxUpdates / p
	if maxRounds < 1 {
		maxRounds = 1
	}
	for r := 1; r <= maxRounds; r++ {
		if cfg.Done != nil {
			select {
			case <-cfg.Done:
				res.Cancelled = true
			default:
			}
			if res.Cancelled {
				break
			}
		}
		// Compute phase: every worker relaxes its block from x(r-1).
		maxCost := 0.0
		for w, b := range blocks {
			c := cfg.Cost(w, r)
			if c <= 0 {
				c = 1e-9
			}
			costs[w] = c
			if c > maxCost {
				maxCost = c
			}
			operators.EvalBlock(cfg.Op, scrs[w], b[0], b[1], x, next[b[0]:b[1]])
		}
		// Exchange phase: all-to-all; the barrier completes when the
		// slowest message lands.
		maxLat := 0.0
		for from := 0; from < p; from++ {
			for to := 0; to < p; to++ {
				if from == to {
					continue
				}
				if l := cfg.Latency(from, to, rng); l > maxLat {
					maxLat = l
				}
			}
		}
		roundTime := maxCost + maxLat
		res.Time += roundTime
		for w := 0; w < p; w++ {
			res.ComputeTime[w] += costs[w]
			res.IdleTime[w] += roundTime - costs[w]
		}
		copy(x, next)
		res.Rounds = r
		if cfg.Progress != nil {
			cfg.Progress.Add(int64(p))
		}
		res.Records = append(res.Records, macroiter.Record{
			J: r, S: allComps, MinLabel: r - 1, Worker: 0,
		})
		if cfg.XStar != nil {
			err := vec.DistInf(x, cfg.XStar)
			res.ErrorTrace = append(res.ErrorTrace, TimedError{Time: res.Time, Error: err})
			if cfg.Tol > 0 && err <= cfg.Tol {
				res.Converged = true
				break
			}
		}
		if cfg.MaxTime > 0 && res.Time >= cfg.MaxTime {
			break
		}
	}
	copy(res.X, x)
	if cfg.XStar != nil {
		res.FinalError = vec.DistInf(x, cfg.XStar)
	}
	return res, nil
}

// ReferenceSolve computes a high-accuracy fixed point of cfg.Op by
// synchronous iteration (helper for experiments that need x*).
func ReferenceSolve(op operators.Operator, x0 []float64, tol float64, maxIter int) ([]float64, bool) {
	return operators.FixedPoint(op, x0, tol, maxIter)
}
