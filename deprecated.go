package repro

// Deprecated entry points, kept for one release as thin shims over Solve.
// Each forwards to the engine that replaced it; new code should call Solve
// with WithEngine (see the migration table at the top of repro.go).

import "fmt"

// RunModel executes the mathematical-model engine.
//
// Deprecated: use Solve with WithEngine(EngineModel). The shim forwards to
// Solve; the only semantic change is that a Workers count without WorkerOf
// now assigns contiguous component blocks to machines (previously it was
// ignored).
func RunModel(cfg ModelConfig) (*ModelResult, error) {
	rep, err := Solve(Spec{
		Problem: Problem{Op: cfg.Op, X0: cfg.X0, XStar: cfg.XStar, Weights: cfg.Weights},
		Dynamics: Dynamics{
			Delay: cfg.Delay, Steering: cfg.Steering,
			Theta: cfg.Theta, ValidateConstraint3: cfg.CheckConstraint3,
		},
		Execution: Execution{Workers: cfg.Workers, WorkerOf: cfg.WorkerOf},
		Stopping:  Stopping{Tol: cfg.Tol, MaxIter: cfg.MaxIter, ResidualEvery: cfg.ResidualEvery},
		Engine:    EngineModel,
	})
	if err != nil {
		return nil, err
	}
	res, ok := rep.ModelDetail()
	if !ok {
		return nil, fmt.Errorf("repro: engine %q returned no model detail", rep.Engine)
	}
	return res, nil
}

// specFromSimConfig maps the legacy simulator config onto a Spec.
func specFromSimConfig(cfg SimConfig) Spec {
	return Spec{
		Problem:  Problem{Op: cfg.Op, X0: cfg.X0, XStar: cfg.XStar},
		Dynamics: Dynamics{Flexible: cfg.Flexible},
		Execution: Execution{
			Workers: cfg.Workers, Cost: cfg.Cost, Latency: cfg.Latency,
			DropProb: cfg.DropProb, ApplyStale: cfg.ApplyStale,
			Neighbors: cfg.Neighbors, Seed: cfg.Seed, Trace: cfg.Trace,
		},
		Stopping: Stopping{Tol: cfg.Tol, MaxUpdates: cfg.MaxUpdates, MaxTime: cfg.MaxTime},
	}
}

// RunSim executes the asynchronous discrete-event simulator.
//
// Deprecated: use Solve with WithEngine(EngineSim). The shim forwards to
// Solve; Tol without XStar now triggers a synchronous reference solve
// instead of an error, and Workers defaults to 4 instead of being required.
func RunSim(cfg SimConfig) (*SimResult, error) {
	rep, err := Solve(specFromSimConfig(cfg), WithEngine(EngineSim))
	if err != nil {
		return nil, err
	}
	res, ok := rep.SimDetail()
	if !ok {
		return nil, fmt.Errorf("repro: engine %q returned no sim detail", rep.Engine)
	}
	return res, nil
}

// RunSimSync executes the barrier-synchronous simulated baseline.
//
// Deprecated: use Solve with WithEngine(EngineSimSync). See RunSim for the
// shim's semantic differences.
func RunSimSync(cfg SimConfig) (*SimSyncResult, error) {
	rep, err := Solve(specFromSimConfig(cfg), WithEngine(EngineSimSync))
	if err != nil {
		return nil, err
	}
	res, ok := rep.SimSyncDetail()
	if !ok {
		return nil, fmt.Errorf("repro: engine %q returned no simsync detail", rep.Engine)
	}
	return res, nil
}

// specFromConcurrentConfig maps the legacy goroutine config onto a Spec.
func specFromConcurrentConfig(cfg ConcurrentConfig) Spec {
	return Spec{
		Problem:   Problem{Op: cfg.Op, X0: cfg.X0},
		Dynamics:  Dynamics{Flexible: cfg.Flexible},
		Execution: Execution{Workers: cfg.Workers},
		Stopping: Stopping{
			Tol: cfg.Tol, SweepsBelowTol: cfg.SweepsBelowTol,
			MaxUpdatesPerWorker: cfg.MaxUpdatesPerWorker,
		},
	}
}

// RunShared executes the goroutine shared-memory transport.
//
// Deprecated: use Solve with WithEngine(EngineShared). The shim forwards to
// Solve; Workers defaults to 4 instead of being required.
func RunShared(cfg ConcurrentConfig) (*ConcurrentResult, error) {
	rep, err := Solve(specFromConcurrentConfig(cfg), WithEngine(EngineShared))
	if err != nil {
		return nil, err
	}
	res, ok := rep.ConcurrentDetail()
	if !ok {
		return nil, fmt.Errorf("repro: engine %q returned no concurrent detail", rep.Engine)
	}
	return res, nil
}

// RunMessage executes the goroutine message-passing transport.
//
// Deprecated: use Solve with WithEngine(EngineMessage). The shim forwards
// to Solve; Workers defaults to 4 instead of being required.
func RunMessage(cfg ConcurrentConfig) (*ConcurrentResult, error) {
	rep, err := Solve(specFromConcurrentConfig(cfg), WithEngine(EngineMessage))
	if err != nil {
		return nil, err
	}
	res, ok := rep.ConcurrentDetail()
	if !ok {
		return nil, fmt.Errorf("repro: engine %q returned no concurrent detail", rep.Engine)
	}
	return res, nil
}
