package repro

import (
	"time"

	"repro/internal/operators"
)

// Tuning is the unified kernel-performance knob group. The zero value is
// the default everywhere: untiled, serial, Gram precomputed. BlockSize and
// IntraParallelism are bit-identical to the scalar reference — tiling
// carries the canonical 4-accumulator reduction across tiles and parallel
// lanes write disjoint output rows — so they never change a trajectory.
// GramPrecompute selects between two internally consistent gradient forms
// for LeastSquares scenarios and is the one knob that does change bits
// (it changes the math that runs, not its evaluation order).
//
// Tuning, like the Faults group, is declared once in the knob table (see
// KnobTable): the CLI flags, the server's /v1/solve JSON fields and the
// load generator all derive from the same entries.
type Tuning struct {
	// BlockSize is the column-tile width of dense row-slab matvecs; 0
	// disables tiling. Rounded down to a multiple of 4. Helps once the
	// matrix rows no longer fit in L1/L2 (n in the thousands).
	BlockSize int
	// IntraParallelism fans a large block evaluation out over this many
	// goroutine lanes (0 or 1 = serial). Helps when blocks are tall
	// (hi-lo >= the internal threshold) and cores are otherwise idle.
	IntraParallelism int
	// GramPrecompute selects the LeastSquares gradient form at scenario
	// build: nil or true precomputes the n x n Gram matrix (the default,
	// O(n·b) gradient slabs); false runs the lean residual form (no n^2
	// memory, O(m·(b+n)) slabs). Only consulted by scenario builders.
	GramPrecompute *bool
}

// DefaultTuning returns the default knobs; it is the zero value, spelled
// out for call sites that want to say so.
func DefaultTuning() Tuning { return Tuning{} }

// GramPrecomputed reports the effective GramPrecompute setting (nil means
// true).
func (t Tuning) GramPrecomputed() bool { return t.GramPrecompute == nil || *t.GramPrecompute }

// operatorTuning maps the public knobs onto the kernel-level settings every
// worker scratch carries.
func (t Tuning) operatorTuning() operators.Tuning {
	return operators.Tuning{Tile: t.BlockSize, Parallelism: t.IntraParallelism}
}

// WithTuning replaces the whole tuning knob group.
func WithTuning(t Tuning) Option { return func(s *Spec) { s.Tuning = t } }

// WithBlockSize sets the column-tile width of dense row-slab matvecs
// (0 = untiled).
func WithBlockSize(n int) Option { return func(s *Spec) { s.Tuning.BlockSize = n } }

// WithIntraParallelism fans large block evaluations out over p goroutine
// lanes (0 or 1 = serial).
func WithIntraParallelism(p int) Option { return func(s *Spec) { s.Tuning.IntraParallelism = p } }

// WithGramPrecompute selects the LeastSquares gradient form for scenario
// builds: true precomputes the Gram matrix (default), false runs the lean
// residual form. See Tuning.GramPrecompute.
func WithGramPrecompute(precompute bool) Option {
	return func(s *Spec) { s.Tuning.GramPrecompute = &precompute }
}

// Faults groups the fault-injection knobs of the lossy engines (asynchronous
// simulator and dist): message loss, reordering and injected transit delay.
// WithFaults replaces the whole group, so the three knobs read and write as
// one coherent unit; the legacy per-knob options remain as deprecated shims.
type Faults struct {
	// DropProb is the iid probability a message is lost in transit.
	DropProb float64
	// ReorderProb is the iid probability a relayed block is held back long
	// enough for later messages to overtake it (dist engine).
	ReorderProb float64
	// MaxLinkDelay adds a uniform random transit delay in [0, MaxLinkDelay]
	// to every relayed block (dist engine).
	MaxLinkDelay time.Duration
}

// WithFaults replaces the fault-injection knob group.
func WithFaults(f Faults) Option {
	return func(s *Spec) {
		s.DropProb = f.DropProb
		s.ReorderProb = f.ReorderProb
		s.MaxLinkDelay = f.MaxLinkDelay
	}
}

// Faults reads the current fault-injection knob group back from the spec.
func (e *Execution) Faults() Faults {
	return Faults{DropProb: e.DropProb, ReorderProb: e.ReorderProb, MaxLinkDelay: e.MaxLinkDelay}
}

// Elastic groups the dist engine's elasticity knobs: a non-zero
// HeartbeatEvery switches the engine from "any worker loss fails the run"
// to "dead links are detected, survivors are re-sharded mid-solve, and
// restarted workers rejoin and warm-start from their last checkpoint".
// Like Faults, the group is declared once in the knob table (group
// "elastic"), so the CLI flags and the server's /v1/solve JSON fields
// derive from the same entries. The other engines ignore the group.
type Elastic struct {
	// HeartbeatEvery is the worker heartbeat period; zero disables
	// elasticity entirely (the rigid default).
	HeartbeatEvery time.Duration
	// CheckpointEvery is the period between worker shard checkpoints to
	// the coordinator; 0 defaults to 4x HeartbeatEvery.
	CheckpointEvery time.Duration
	// MaxRejoinWait bounds a restarted worker's dial-and-register retry
	// loop (capped exponential backoff with jitter); 0 defaults to 10s.
	MaxRejoinWait time.Duration
	// CheckpointPath, when non-empty, additionally persists the
	// coordinator's assembled checkpoint to this file.
	CheckpointPath string
}

// WithElastic replaces the dist engine's elasticity knob group.
func WithElastic(e Elastic) Option {
	return func(s *Spec) {
		s.HeartbeatEvery = e.HeartbeatEvery
		s.CheckpointEvery = e.CheckpointEvery
		s.MaxRejoinWait = e.MaxRejoinWait
		s.CheckpointPath = e.CheckpointPath
	}
}

// Elastic reads the current elasticity knob group back from the spec.
func (e *Execution) Elastic() Elastic {
	return Elastic{
		HeartbeatEvery:  e.HeartbeatEvery,
		CheckpointEvery: e.CheckpointEvery,
		MaxRejoinWait:   e.MaxRejoinWait,
		CheckpointPath:  e.CheckpointPath,
	}
}
