package repro

// Solve-level buffer reuse. A Scratch owns the allocation-heavy state the
// engines need per run — operator-evaluation temporaries, read-vector
// buffers — so repeated Solves of the same shape (parameter sweeps,
// benchmark loops, serving the same problem for many right-hand sides)
// stop paying the per-solve allocation tax:
//
//	scr := repro.NewScratch()
//	for _, seed := range seeds {
//		res, _ := repro.Solve(spec, repro.WithSeed(seed), repro.WithScratch(scr))
//		...
//	}
//
// A Scratch adapts to whatever engine uses it: the model engine draws its
// single-threaded RunScratch, the simulated and goroutine engines draw one
// operator scratch per worker. Buffers grow to the largest shape seen and
// are reused thereafter.
//
// A Scratch must not be shared by concurrent Solve calls; give each
// goroutine its own (the per-worker scratches inside one solve are handled
// by the engines themselves).

import (
	"repro/internal/core"
	"repro/internal/operators"
)

// Scratch is reusable solver state for repeated Solves. The zero value is
// not usable; call NewScratch.
type Scratch struct {
	model   *core.RunScratch
	workers []*operators.Scratch
}

// NewScratch returns an empty Scratch whose buffers are created on first
// use and reused across Solves.
func NewScratch() *Scratch {
	return &Scratch{model: core.NewRunScratch()}
}

// modelScratch returns the model engine's reusable run state.
func (s *Scratch) modelScratch() *core.RunScratch {
	if s == nil {
		return nil
	}
	return s.model
}

// workerScratches returns p per-worker operator scratches, growing the pool
// as needed so the same workers keep the same buffers across Solves.
func (s *Scratch) workerScratches(p int) []*operators.Scratch {
	if s == nil {
		return nil
	}
	for len(s.workers) < p {
		s.workers = append(s.workers, operators.NewScratch())
	}
	return s.workers[:p]
}
