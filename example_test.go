package repro_test

// Runnable documentation examples (go doc / godoc render these and the
// test runner verifies their output).

import (
	"fmt"

	"repro"
)

// ExampleSolve shows the unified entry point: one spec, any engine. Here
// the paper's Definition 1 runs on a two-dimensional affine contraction
// with fresh labels under the mathematical-model engine.
func ExampleSolve() {
	a := repro.DenseFromRows([][]float64{
		{0, 0.5},
		{0.5, 0},
	})
	op := repro.NewLinear(a, []float64{1, 1}) // fixed point (2, 2)
	res, err := repro.Solve(repro.NewSpec(op),
		repro.WithEngine(repro.EngineModel),
		repro.WithXStar([]float64{2, 2}),
		repro.WithTol(1e-10),
		repro.WithMaxIter(10000),
	)
	if err != nil {
		panic(err)
	}
	fmt.Printf("converged=%v x=(%.3f, %.3f)\n", res.Converged, res.X[0], res.X[1])
	// Output: converged=true x=(2.000, 2.000)
}

// ExampleSolve_scenario composes a registered workload with a delay model
// and engine by name — the combination the CLI exposes as
// "asyncsolve -scenario routing -delay ooo:8".
func ExampleSolve_scenario() {
	inst, err := repro.BuildScenario("routing", 16, 3)
	if err != nil {
		panic(err)
	}
	dm, err := repro.ParseDelay("ooo:8", 3)
	if err != nil {
		panic(err)
	}
	res, err := repro.Solve(inst.Spec, repro.WithDelay(dm))
	if err != nil {
		panic(err)
	}
	fmt.Printf("converged=%v error=%.1e\n", res.Converged, res.FinalError)
	// Output: converged=true error=0.0e+00
}

// ExampleRunModel shows the deprecated config-struct entry point, kept as a
// shim over Solve (see the migration note in repro.go).
func ExampleRunModel() {
	a := repro.DenseFromRows([][]float64{
		{0, 0.5},
		{0.5, 0},
	})
	op := repro.NewLinear(a, []float64{1, 1}) // fixed point (2, 2)
	res, err := repro.RunModel(repro.ModelConfig{
		Op:      op,
		XStar:   []float64{2, 2},
		Tol:     1e-10,
		MaxIter: 10000,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("converged=%v x=(%.3f, %.3f)\n", res.Converged, res.X[0], res.X[1])
	// Output: converged=true x=(2.000, 2.000)
}

// ExampleNewMacroTracker shows the Definition 2 macro-iteration sequence on
// a hand-fed run: two components relaxed alternately with fresh labels
// close a macro-iteration every two iterations.
func ExampleNewMacroTracker() {
	tr := repro.NewMacroTracker(2)
	tr.Observe(1, []int{0}, 0)
	tr.Observe(2, []int{1}, 1)
	tr.Observe(3, []int{0}, 2)
	tr.Observe(4, []int{1}, 3)
	fmt.Println(tr.Boundaries())
	// Output: [2 4]
}

// ExampleCheckDelayConditions validates Baudet's unbounded-delay model
// against conditions a) and b) of Definition 1.
func ExampleCheckDelayConditions() {
	rep := repro.CheckDelayConditions(repro.SqrtGrowthDelay{}, 2, 10000)
	fmt.Printf("a=%v b=%v unbounded=%v\n", rep.AOK, rep.BOK, rep.MaxDelay > 50)
	// Output: a=true b=true unbounded=true
}

// ExampleL1 shows the soft-thresholding proximal map of the lasso
// regularizer.
func ExampleL1() {
	p := repro.L1{Lambda: 1}
	fmt.Println(p.Apply(0, 3, 1), p.Apply(0, 0.5, 1), p.Apply(0, -3, 1))
	// Output: 2 0 -2
}

// ExampleNewBellmanFordOp runs asynchronous distance-vector routing on a
// small line graph and prints the shortest distances.
func ExampleNewBellmanFordOp() {
	g, _ := repro.NewRoutingGraph(3)
	_ = g.AddEdge(0, 1, 2)
	_ = g.AddEdge(1, 2, 3)
	op, _ := repro.NewBellmanFordOp(g, 0)
	res, err := repro.RunModel(repro.ModelConfig{
		Op:    op,
		X0:    op.InitialDistances(),
		XStar: g.Dijkstra(0),
		Tol:   1e-12, MaxIter: 1000,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.X)
	// Output: [0 2 5]
}
