package repro_test

import (
	"reflect"
	"runtime"
	"testing"

	"repro"
)

// The public tuning knobs must never change a solve trajectory: tiling and
// intra-block fan-out are bit-identical by construction, and these runs pin
// that end to end through the facade — every engine, every knob
// combination, same Report to the last bit.

func tuningTestOps(t *testing.T) map[string]repro.Operator {
	t.Helper()
	// n = 96 > the internal fan-out threshold (64), so full-dimension block
	// evaluations (residuals, single-worker runs) genuinely fan out.
	reg, err := repro.NewRegression(repro.RegressionConfig{
		N: 96, Coupling: 0.3, Sparsity: 0.5, Noise: 0.01, Reg: 0.1, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := reg.Smooth()
	return map[string]repro.Operator{
		"proxGradBF-lasso": repro.NewProxGradBF(f, repro.L1{Lambda: 0.02}, repro.MaxStep(f)),
		"gradOp-ridge":     repro.NewGradOp(f, repro.MaxStep(f)),
	}
}

func TestTuningKnobsBitIdenticalTrajectories(t *testing.T) {
	engines := []struct {
		name string
		opts []repro.Option
	}{
		{"model", []repro.Option{
			repro.WithEngine(repro.EngineModel),
			repro.WithDelay(repro.BoundedRandomDelay{B: 8, Seed: 3}),
			repro.WithTol(1e-9), repro.WithMaxIter(100000),
		}},
		// One worker owns the whole 96-row block: every evaluation is tall
		// enough to fan out when intra-parallelism is on.
		{"sim-1worker", []repro.Option{
			repro.WithEngine(repro.EngineSim),
			repro.WithWorkers(1),
			repro.WithSeed(4),
			repro.WithMaxUpdates(2000),
		}},
		{"simsync", []repro.Option{
			repro.WithEngine(repro.EngineSimSync),
			repro.WithWorkers(6),
			repro.WithMaxUpdates(2000),
		}},
	}
	combos := []struct {
		name string
		opts []repro.Option
	}{
		{"blockSize8", []repro.Option{repro.WithBlockSize(8)}},
		{"blockSize12", []repro.Option{repro.WithBlockSize(12)}},
		{"intraParallel4", []repro.Option{repro.WithIntraParallelism(4)}},
		{"tiled+parallel", []repro.Option{repro.WithTuning(repro.Tuning{BlockSize: 8, IntraParallelism: 4})}},
		{"parallelOverCPU", []repro.Option{repro.WithIntraParallelism(runtime.NumCPU() + 16)}},
	}
	for name, op := range tuningTestOps(t) {
		for _, eng := range engines {
			base, err := repro.Solve(repro.NewSpec(op, eng.opts...))
			if err != nil {
				t.Fatalf("%s/%s untuned run: %v", name, eng.name, err)
			}
			bt := trajectory(base)
			for _, combo := range combos {
				opts := append(append([]repro.Option{}, eng.opts...), combo.opts...)
				tuned, err := repro.Solve(repro.NewSpec(op, opts...))
				if err != nil {
					t.Fatalf("%s/%s/%s tuned run: %v", name, eng.name, combo.name, err)
				}
				tt := trajectory(tuned)
				for field, bv := range bt {
					if !reflect.DeepEqual(bv, tt[field]) {
						t.Errorf("%s/%s/%s: %s differs from the untuned trajectory",
							name, eng.name, combo.name, field)
					}
				}
			}
		}
	}
}

// BuildScenarioTuned must hand the knobs to the builder AND stamp them on
// the returned Spec; gram_precompute=false selects the lean LeastSquares
// form, which still solves lasso and ridge to tolerance (different bits,
// same optimum).
func TestBuildScenarioTunedLeanGram(t *testing.T) {
	lean := false
	tun := repro.Tuning{GramPrecompute: &lean, BlockSize: 16}
	for _, scenario := range []string{"lasso", "ridge"} {
		inst, err := repro.BuildScenarioTuned(scenario, 64, 1, tun)
		if err != nil {
			t.Fatal(err)
		}
		if inst.Spec.Tuning.GramPrecomputed() {
			t.Fatalf("%s: Spec.Tuning lost GramPrecompute=false", scenario)
		}
		if inst.Spec.Tuning.BlockSize != 16 {
			t.Fatalf("%s: Spec.Tuning lost BlockSize", scenario)
		}
		rep, err := repro.Solve(inst.Spec,
			repro.WithEngine(repro.EngineModel),
			repro.WithDelay(repro.FreshDelay{}))
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Converged {
			t.Errorf("%s with lean Gram form did not converge (residual %g)",
				scenario, rep.FinalResidual)
		}
	}
	// The default build precomputes the Gram matrix; the zero Tuning must
	// not flip it.
	inst, err := repro.BuildScenario("lasso", 48, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !inst.Spec.Tuning.GramPrecomputed() {
		t.Error("default build lost Gram precomputation")
	}
}

// The lean form must survive the block-vs-fallback equivalence the eager
// form is pinned to: same trajectory whether the lean gradient runs through
// the whole-block fast path or the per-component fallback.
func TestLeanGramBlockPathBitIdentical(t *testing.T) {
	reg, err := repro.NewRegression(repro.RegressionConfig{
		N: 48, Coupling: 0.3, Sparsity: 0.5, Noise: 0.01, Reg: 0.1, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := reg.SmoothTuned(true, 1)
	op := repro.NewProxGradBF(f, repro.L1{Lambda: 0.02}, repro.MaxStep(f))
	opts := []repro.Option{
		repro.WithEngine(repro.EngineSim),
		repro.WithWorkers(4),
		repro.WithSeed(7),
		repro.WithMaxUpdates(2000),
	}
	block, err := repro.Solve(repro.NewSpec(op, opts...))
	if err != nil {
		t.Fatal(err)
	}
	fallback, err := repro.Solve(repro.NewSpec(noBlock{op}, opts...))
	if err != nil {
		t.Fatal(err)
	}
	bt, ft := trajectory(block), trajectory(fallback)
	for field, bv := range bt {
		if !reflect.DeepEqual(bv, ft[field]) {
			t.Errorf("lean %s differs between block path and per-component fallback", field)
		}
	}
}
