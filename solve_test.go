package repro_test

// Tests of the unified Solve API: the cross-engine parity guarantee (one
// spec, six engines, one fixed point), the scenario registry, and the
// option/report plumbing.

import (
	"strings"
	"testing"
	"time"

	"repro"
)

// lassoSpec builds the parity workload: a 16-feature lasso problem whose
// backward-forward operator contracts in the max norm, plus its reference
// fixed point.
func lassoSpec(t testing.TB) (repro.Spec, []float64) {
	t.Helper()
	reg, err := repro.NewRegression(repro.RegressionConfig{
		N: 16, Coupling: 0.3, Sparsity: 0.5, Noise: 0.01, Reg: 0.1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := reg.Smooth()
	op := repro.NewProxGradBF(f, repro.L1{Lambda: 0.02}, repro.MaxStep(f))
	xstar, ok := repro.FixedPoint(op, make([]float64, f.Dim()), 1e-13, 500000)
	if !ok {
		t.Fatal("reference solve failed")
	}
	return repro.NewSpec(op, repro.WithXStar(xstar)), xstar
}

// TestSolveEngineParity is the acceptance test of the unified API: the same
// lasso spec solved on all six backends reaches the same fixed point.
func TestSolveEngineParity(t *testing.T) {
	spec, xstar := lassoSpec(t)
	for _, engine := range repro.Engines() {
		engine := engine
		t.Run(engine.Name(), func(t *testing.T) {
			res, err := repro.Solve(spec,
				repro.WithEngine(engine),
				repro.WithDelay(repro.BoundedRandomDelay{B: 8, Seed: 2}),
				repro.WithWorkers(4),
				repro.WithSeed(3),
				repro.WithTol(1e-9),
				repro.WithMaxIter(2000000),
				repro.WithMaxUpdates(2000000),
			)
			if err != nil {
				t.Fatal(err)
			}
			if res.Engine != engine.Name() {
				t.Errorf("Report.Engine = %q, want %q", res.Engine, engine.Name())
			}
			if !res.Converged {
				t.Fatalf("engine %s did not converge", engine.Name())
			}
			if e := repro.DistInf(res.X, xstar); e > 1e-6 {
				t.Errorf("engine %s fixed point off by %v", engine.Name(), e)
			}
			if res.FinalError > 1e-6 {
				t.Errorf("engine %s FinalError = %v", engine.Name(), res.FinalError)
			}
			if res.Updates == 0 {
				t.Errorf("engine %s reported no updates", engine.Name())
			}
		})
	}
}

// TestSolveEngineDetail checks the typed per-engine accessors are populated
// exactly for the engine that ran.
func TestSolveEngineDetail(t *testing.T) {
	spec, _ := lassoSpec(t)
	res, err := repro.Solve(spec, repro.WithTol(1e-9), repro.WithMaxIter(200000))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.ModelDetail(); !ok {
		t.Error("model run lacks ModelDetail")
	}
	if _, ok := res.SimDetail(); ok {
		t.Error("model run unexpectedly has SimDetail")
	}

	res, err = repro.Solve(spec, repro.WithEngine(repro.EngineSim),
		repro.WithTol(1e-9), repro.WithMaxUpdates(200000))
	if err != nil {
		t.Fatal(err)
	}
	sim, ok := res.SimDetail()
	if !ok || sim.Updates != res.Updates {
		t.Error("sim detail missing or inconsistent")
	}

	res, err = repro.Solve(spec, repro.WithEngine(repro.EngineSimSync),
		repro.WithTol(1e-9), repro.WithMaxUpdates(200000))
	if err != nil {
		t.Fatal(err)
	}
	sync, ok := res.SimSyncDetail()
	if !ok || len(sync.IdleTime) == 0 {
		t.Error("simsync detail missing idle-time accounting")
	}

	res, err = repro.Solve(spec, repro.WithEngine(repro.EngineShared),
		repro.WithTol(1e-9), repro.WithMaxUpdatesPerWorker(1<<18))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.ConcurrentDetail(); !ok {
		t.Error("shared run lacks ConcurrentDetail")
	}
}

// TestSolveValidation covers the entry-point error paths.
func TestSolveValidation(t *testing.T) {
	if _, err := repro.Solve(repro.Spec{}); err == nil {
		t.Error("expected error for missing operator")
	}
	if _, err := repro.EngineByName("quantum"); err == nil {
		t.Error("expected error for unknown engine")
	}
	for _, name := range []string{"model", "sim", "simsync", "shared", "message", "dist"} {
		e, err := repro.EngineByName(name)
		if err != nil {
			t.Errorf("EngineByName(%q): %v", name, err)
		} else if e.Name() != name {
			t.Errorf("EngineByName(%q).Name() = %q", name, e.Name())
		}
	}
}

// TestScenariosBuildAndSolve is the registry acceptance test: every
// registered scenario builds at a small size and solves to convergence
// through the unified entry point.
func TestScenariosBuildAndSolve(t *testing.T) {
	sizes := map[string]int{
		"lasso":     16,
		"ridge":     16,
		"logistic":  8,
		"netflow":   4,
		"obstacle":  8,
		"routing":   32,
		"multigrid": 7,
	}
	scenarios := repro.Scenarios()
	if len(scenarios) < 7 {
		t.Fatalf("expected at least 7 built-in scenarios, got %d", len(scenarios))
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			n, ok := sizes[sc.Name]
			if !ok {
				n = sc.DefaultN
			}
			inst, err := repro.BuildScenario(sc.Name, n, 7)
			if err != nil {
				t.Fatal(err)
			}
			res, err := repro.Solve(inst.Spec,
				repro.WithDelay(repro.BoundedRandomDelay{B: 4, Seed: 8}))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("scenario %s did not converge (%d iterations, residual %.3g)",
					sc.Name, res.Iterations, res.FinalResidual)
			}
			if inst.Describe != nil && inst.Describe(res.X) == "" {
				t.Errorf("scenario %s Describe returned nothing", sc.Name)
			}
		})
	}
}

// TestDistScenarioParity is the distributed acceptance test: every
// registered scenario converges on the dist engine over localhost TCP, on
// BOTH topologies (star relay and worker-to-worker mesh), with multi-
// component shards (Workers < n wherever the scenario allows), both on
// clean links and with drop + reorder + delay injection enabled under the
// same seeds — each run reaching the same fixed point the in-process
// message engine reaches.
func TestDistScenarioParity(t *testing.T) {
	sizes := map[string]int{
		"lasso":     16,
		"ridge":     16,
		"logistic":  8,
		"netflow":   4,
		"obstacle":  8,
		"routing":   32,
		"multigrid": 7,
	}
	for _, sc := range repro.Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			n, ok := sizes[sc.Name]
			if !ok {
				n = sc.DefaultN
			}
			inst, err := repro.BuildScenario(sc.Name, n, 7)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := repro.Solve(inst.Spec,
				repro.WithEngine(repro.EngineMessage), repro.WithWorkers(4))
			if err != nil {
				t.Fatal(err)
			}
			if !ref.Converged {
				t.Fatalf("message reference for %s did not converge", sc.Name)
			}
			for _, topology := range []string{"star", "mesh"} {
				for _, faulty := range []bool{false, true} {
					opts := []repro.Option{
						repro.WithEngine(repro.EngineDist),
						repro.WithTopology(topology),
						repro.WithWorkers(4),
						repro.WithSeed(9),
					}
					label := topology + "/clean"
					if faulty {
						label = topology + "/faulty"
						opts = append(opts,
							repro.WithDropProb(0.05),
							repro.WithReorderProb(0.25),
							repro.WithMaxLinkDelay(100*time.Microsecond),
						)
					}
					res, err := repro.Solve(inst.Spec, opts...)
					if err != nil {
						t.Fatalf("%s links: %v", label, err)
					}
					if !res.Converged {
						t.Fatalf("dist (%s links) did not converge on %s", label, sc.Name)
					}
					// Both engines stop on the same per-block displacement
					// tolerance; for a contraction both iterates are within
					// O(tol/(1-alpha)) of the fixed point, so compare with
					// generous slack relative to the scenario tolerances.
					if e := repro.DistInf(res.X, ref.X); e > 1e-5 {
						t.Errorf("dist (%s links) deviates from message engine by %v on %s",
							label, e, sc.Name)
					}
					if faulty && res.MessagesSent == 0 {
						t.Errorf("dist (%s links) reported no TCP traffic", label)
					}
					detail, ok := res.DistDetail()
					if !ok {
						t.Fatalf("dist (%s links) lacks DistDetail", label)
					}
					if detail.Topology != topology {
						t.Errorf("DistDetail.Topology = %q, want %q", detail.Topology, topology)
					}
				}
			}
		})
	}
}

// TestDistDeltaThresholdParity runs the flexible-communication knob through
// the public API: a delta threshold at the scenario tolerance must still
// reach the message engine's fixed point on both topologies.
func TestDistDeltaThresholdParity(t *testing.T) {
	inst, err := repro.BuildScenario("lasso", 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := repro.Solve(inst.Spec,
		repro.WithEngine(repro.EngineMessage), repro.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, topology := range []string{"star", "mesh"} {
		res, err := repro.Solve(inst.Spec,
			repro.WithEngine(repro.EngineDist),
			repro.WithTopology(topology),
			repro.WithWorkers(4),
			repro.WithDeltaThreshold(inst.Spec.Tol),
			repro.WithDropProb(0.05),
			repro.WithReorderProb(0.25),
			repro.WithSeed(3),
		)
		if err != nil {
			t.Fatalf("%s: %v", topology, err)
		}
		if !res.Converged {
			t.Fatalf("%s delta-threshold run did not converge", topology)
		}
		if e := repro.DistInf(res.X, ref.X); e > 1e-5 {
			t.Errorf("%s delta-threshold run deviates by %v", topology, e)
		}
	}
}

// TestScenarioRegistryValidation covers registration and lookup errors.
func TestScenarioRegistryValidation(t *testing.T) {
	if err := repro.RegisterScenario(repro.Scenario{}); err == nil {
		t.Error("expected error for unnamed scenario")
	}
	if err := repro.RegisterScenario(repro.Scenario{Name: "lasso"}); err == nil {
		t.Error("expected error for nil builder")
	}
	if err := repro.RegisterScenario(repro.Scenario{
		Name:  "lasso",
		Build: func(n int, seed uint64, t repro.Tuning) (*repro.ScenarioInstance, error) { return nil, nil },
	}); err == nil {
		t.Error("expected error for duplicate scenario")
	}
	// The unknown-scenario error doubles as the discovery surface (it is
	// the serve endpoint's 400 body), so it must list every registered name.
	_, err := repro.BuildScenario("no-such-scenario", 8, 1)
	if err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Fatalf("expected unknown-scenario error, got %v", err)
	}
	for _, s := range repro.Scenarios() {
		if !strings.Contains(err.Error(), s.Name) {
			t.Errorf("unknown-scenario error does not list registered scenario %q: %v", s.Name, err)
		}
	}
}

// TestParseDelay covers the CLI delay-model syntax.
func TestParseDelay(t *testing.T) {
	cases := []struct {
		in   string
		name string
	}{
		{"fresh", "fresh"},
		{"constant:3", "constant(3)"},
		{"bounded", "boundedRandom(B=8)"},
		{"bounded:4", "boundedRandom(B=4)"},
		{"sqrt", "sqrtGrowth"},
		{"log", "logGrowth"},
		{"ooo:32", "outOfOrder(W=32)"},
	}
	for _, c := range cases {
		m, err := repro.ParseDelay(c.in, 1)
		if err != nil {
			t.Errorf("ParseDelay(%q): %v", c.in, err)
			continue
		}
		if m.Name() != c.name {
			t.Errorf("ParseDelay(%q).Name() = %q, want %q", c.in, m.Name(), c.name)
		}
	}
	// Degenerate parameters are rejected: a zero parameter would silently
	// behave like the fresh model, and the parameterless models take none.
	for _, bad := range []string{"", "warp", "bounded:x", "bounded:-1",
		"constant:0", "bounded:0", "ooo:0", "constant:-3",
		"fresh:1", "sqrt:2", "log:2"} {
		if _, err := repro.ParseDelay(bad, 1); err == nil {
			t.Errorf("ParseDelay(%q) should fail", bad)
		}
	}
}

// TestSolveAutoReference checks that the simulated engines compute a
// synchronous reference when Tol is set without XStar.
func TestSolveAutoReference(t *testing.T) {
	spec, xstar := lassoSpec(t)
	spec.XStar = nil
	res, err := repro.Solve(spec, repro.WithEngine(repro.EngineSim),
		repro.WithTol(1e-9), repro.WithMaxUpdates(500000), repro.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("auto-reference sim run did not converge")
	}
	if e := repro.DistInf(res.X, xstar); e > 1e-6 {
		t.Errorf("auto-reference solution off by %v", e)
	}
}

// TestDeprecatedShims checks the legacy entry points still work and agree
// with Solve.
func TestDeprecatedShims(t *testing.T) {
	spec, xstar := lassoSpec(t)
	op := spec.Op

	model, err := repro.RunModel(repro.ModelConfig{
		Op: op, XStar: xstar, Tol: 1e-9, MaxIter: 500000,
	})
	if err != nil || !model.Converged {
		t.Fatalf("RunModel shim failed: %v", err)
	}
	sim, err := repro.RunSim(repro.SimConfig{
		Op: op, Workers: 4, XStar: xstar, Tol: 1e-9, MaxUpdates: 500000, Seed: 5,
	})
	if err != nil || !sim.Converged {
		t.Fatalf("RunSim shim failed: %v", err)
	}
	shared, err := repro.RunShared(repro.ConcurrentConfig{
		Op: op, Workers: 2, Tol: 1e-9, MaxUpdatesPerWorker: 1 << 18,
	})
	if err != nil || !shared.Converged {
		t.Fatalf("RunShared shim failed: %v", err)
	}
	for name, x := range map[string][]float64{
		"model": model.X, "sim": sim.X, "shared": shared.X,
	} {
		if e := repro.DistInf(x, xstar); e > 1e-6 {
			t.Errorf("shim %s deviates by %v", name, e)
		}
	}
}
