// Command experiments runs the reproduction suite (F1-F2, E1-E12 of
// DESIGN.md) and prints each experiment's tables and findings — the rows
// recorded in EXPERIMENTS.md.
//
// Usage:
//
//	experiments            # run everything
//	experiments -run E2    # run one experiment
//	experiments -list      # list experiment ids and titles
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	runID := flag.String("run", "", "run a single experiment id (e.g. E2); empty = all")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Println(e.ID)
		}
		return
	}

	ids := experiments.IDs()
	if *runID != "" {
		if experiments.Lookup(*runID) == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n",
				*runID, strings.Join(ids, " "))
			os.Exit(2)
		}
		ids = []string{*runID}
	}

	failed := 0
	for _, id := range ids {
		run := experiments.Lookup(id)
		start := time.Now()
		rep := run()
		elapsed := time.Since(start)

		fmt.Printf("%s\n", strings.Repeat("=", 78))
		fmt.Printf("%s — %s   [%v]\n", rep.ID, rep.Title, elapsed.Round(time.Millisecond))
		fmt.Printf("%s\n\n", strings.Repeat("=", 78))
		for _, tb := range rep.Tables {
			fmt.Println(tb)
		}
		for _, n := range rep.Notes {
			fmt.Println(n)
		}
		status := "PASS"
		if !rep.Pass {
			status = "FAIL"
			failed++
		}
		fmt.Printf("\n[%s] %s\n\n", status, rep.ID)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed acceptance criteria\n", failed)
		os.Exit(1)
	}
}
