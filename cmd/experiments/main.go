// Command experiments runs the reproduction suite (F1-F2, E1-E17 of
// DESIGN.md) and prints each experiment's tables and findings — the rows
// recorded in EXPERIMENTS.md.
//
// Usage:
//
//	experiments             # run everything in parallel (GOMAXPROCS workers)
//	experiments -parallel 1 # serial execution
//	experiments -run E2     # run one experiment
//	experiments -list       # list experiment ids and exit
//
// Experiments are independent, so the suite executes on a worker pool
// (experiments.RunAll); output order is always the registry order
// regardless of completion order.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	runID := flag.String("run", "", "run a single experiment id (e.g. E2); empty = all")
	parallel := flag.Int("parallel", 0, "worker-pool size; 0 = GOMAXPROCS, 1 = serial")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Println(e.ID)
		}
		return
	}

	ids := experiments.IDs()
	if *runID != "" {
		if experiments.Lookup(*runID) == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n",
				*runID, strings.Join(ids, " "))
			os.Exit(2)
		}
		ids = []string{*runID}
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	outcomes, ctxErr := experiments.RunSelected(ctx, *parallel, ids)

	failed := 0
	for _, oc := range outcomes {
		if oc.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", oc.ID, oc.Err)
			failed++
			continue
		}
		rep := oc.Report
		fmt.Printf("%s\n", strings.Repeat("=", 78))
		fmt.Printf("%s — %s   [%v]\n", rep.ID, rep.Title, oc.Elapsed.Round(time.Millisecond))
		fmt.Printf("%s\n\n", strings.Repeat("=", 78))
		for _, tb := range rep.Tables {
			fmt.Println(tb)
		}
		for _, n := range rep.Notes {
			fmt.Println(n)
		}
		status := "PASS"
		if !rep.Pass {
			status = "FAIL"
			failed++
		}
		fmt.Printf("\n[%s] %s\n\n", status, rep.ID)
	}
	if ctxErr != nil {
		fmt.Fprintf(os.Stderr, "suite interrupted: %v\n", ctxErr)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed acceptance criteria\n", failed)
		os.Exit(1)
	}
	if ctxErr != nil {
		os.Exit(1)
	}
}
