package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/benchsuite"
)

// runBenchCompare implements `asyncsolve bench-compare`: it gates the
// block-evaluation fast path against a committed baseline capture. For every
// BlockEval pair (BlockEvalX / BlockEvalXPerComponent) present in both
// captures, the current speedup MULTIPLE must not regress more than
// -tolerance below the baseline's multiple. Ratios within one capture are
// compared — never raw ns/op across captures — so the gate holds across
// machines of different absolute speed (CI runners vs dev boxes).
func runBenchCompare(args []string) {
	fs := flag.NewFlagSet("bench-compare", flag.ExitOnError)
	baselinePath := fs.String("baseline", "BENCH_baseline.json", "committed baseline capture")
	currentPath := fs.String("current", "", "fresh capture to check (required)")
	tolerance := fs.Float64("tolerance", 0.2, "allowed fractional regression of each speedup multiple")
	serveTolerance := fs.Float64("serve-tolerance", 0.5, "allowed fractional regression of the ServeSustained/ScenarioSolveLasso ratio (looser: it includes HTTP and scheduler noise)")
	solveTolerance := fs.Float64("solve-tolerance", 0.3, "allowed fractional regression of each normalized solve-rate case (Scenario*, ServeSustained)")
	distTolerance := fs.Float64("dist-tolerance", 0.5, "allowed fractional regression of the Dist* solve-rate cases (looser: real TCP sockets and OS scheduling)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), `usage: asyncsolve bench-compare -baseline BENCH_baseline.json -current BENCH_new.json [-tolerance 0.2]

Fails (exit 1) when any BlockEval case's block-vs-per-component speedup
multiple in the current capture is more than tolerance below the
baseline's, when the serving-efficiency ratio (ServeSustained solves/sec
normalized by ScenarioSolveLasso within the same capture) is more than
serve-tolerance below the baseline's, or when any solve-rate case
(Scenario*, DistStarWorkers, DistMeshWorkers, ServeSustained) — normalized
by the within-capture geometric mean of the cases common to both files —
is more than solve-tolerance (dist-tolerance for Dist*) below the
baseline's. Every gate compares within-capture ratios, never raw ns/op
across captures, so it holds across machines of different absolute speed.

`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "asyncsolve bench-compare: -current is required")
		os.Exit(2)
	}
	if *tolerance < 0 || *tolerance >= 1 || *serveTolerance < 0 || *serveTolerance >= 1 ||
		*solveTolerance < 0 || *solveTolerance >= 1 || *distTolerance < 0 || *distTolerance >= 1 {
		fmt.Fprintln(os.Stderr, "asyncsolve bench-compare: tolerances must be in [0, 1)")
		os.Exit(2)
	}

	read := func(path string) *benchsuite.File {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		capture, err := benchsuite.ReadFile(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			os.Exit(1)
		}
		return capture
	}
	baseline := read(*baselinePath)
	current := read(*currentPath)

	failed := false
	lines, err := benchsuite.CompareBlockEval(baseline, current, *tolerance)
	for _, l := range lines {
		fmt.Println(l)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		failed = true
	}
	serveLines, serveErr := benchsuite.CompareServeSustained(baseline, current, *serveTolerance)
	for _, l := range serveLines {
		fmt.Println(l)
	}
	if serveErr != nil {
		fmt.Fprintln(os.Stderr, serveErr)
		failed = true
	}
	rateLines, rateErr := benchsuite.CompareSolveRates(baseline, current, *solveTolerance, *distTolerance)
	for _, l := range rateLines {
		fmt.Println(l)
	}
	if rateErr != nil {
		fmt.Fprintln(os.Stderr, rateErr)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("bench-compare: block-evaluation speedups within %.0f%%, serving efficiency within %.0f%% and normalized solve rates within %.0f%% (dist %.0f%%) of baseline (%s)\n",
		*tolerance*100, *serveTolerance*100, *solveTolerance*100, *distTolerance*100, baseline.Revision)
}
