package main

// The dist-coordinator / dist-worker subcommands run the TCP engine as
// separate OS processes — the same protocol the in-process "dist" engine
// and its tests use over localhost, deployed for real:
//
//	asyncsolve dist-coordinator -listen 127.0.0.1:7000 -workers 2 -scenario lasso &
//	asyncsolve dist-worker -connect 127.0.0.1:7000 -scenario lasso &
//	asyncsolve dist-worker -connect 127.0.0.1:7000 -scenario lasso
//
// Every process builds the same scenario (name, size, seed) locally, so
// only coordinates — never operators — cross the wire. With
// -topology mesh the coordinator keeps only the control plane: each worker
// opens its own listener, the coordinator distributes the peer table, and
// shard frames flow over direct worker-to-worker TCP links (the workers
// learn the topology, fault config and delta threshold from the welcome
// frame, so no extra worker-side flags are needed).

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"repro"
	"repro/internal/dist"
)

// distScenario resolves the workload every dist process must agree on.
func distScenario(scenario string, n int, seed uint64) (*repro.ScenarioInstance, error) {
	if scenario == "" {
		scenario = "lasso"
	}
	return repro.BuildScenario(scenario, n, seed)
}

func runDistCoordinator(args []string) {
	fs := flag.NewFlagSet("dist-coordinator", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:7000", "address to accept workers on")
	workers := fs.Int("workers", 2, "number of worker processes to wait for")
	scenario := fs.String("scenario", "lasso", "workload scenario (must match the workers')")
	topology := fs.String("topology", "star", "data plane: star (coordinator relay) | mesh (worker-to-worker links)")
	n := fs.Int("n", 0, "problem size; 0 = scenario default (must match the workers')")
	seed := fs.Uint64("seed", 1, "workload seed (must match the workers')")
	tol := fs.Float64("tol", -1, "convergence tolerance; negative = scenario default")
	deltaThr := fs.Float64("delta", 0, "flexible-communication threshold: ship only components that moved more than this")
	maxUpdates := fs.Int("maxupdates", 0, "per-worker update budget; 0 = default")
	// -drop, -reorder, -maxdelay and the elastic knobs (-heartbeat,
	// -checkpoint, -rejoin-wait, -checkpoint-file) come from the shared knob
	// table so the coordinator accepts the same spellings as every other
	// surface.
	knobs := repro.RegisterKnobFlags(fs, "faults", "elastic")
	timeout := fs.Duration("timeout", 2*time.Minute, "run timeout")
	fs.Parse(args)

	knobSpec, err := knobs.Spec()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	faults := knobSpec.Faults()
	elastic := knobSpec.Elastic()

	inst, err := distScenario(*scenario, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	spec := inst.Spec
	if *tol >= 0 {
		spec.Tol = *tol
	}
	dim := spec.Op.Dim()
	p := *workers
	if p > dim {
		p = dim
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("coordinator: scenario=%s n=%d topology=%s waiting for %d workers on %s\n",
		*scenario, dim, *topology, p, ln.Addr())
	res, err := dist.Serve(dist.ServerConfig{
		Listener:            ln,
		Workers:             p,
		Topology:            *topology,
		N:                   dim,
		X0:                  spec.X0,
		Tol:                 spec.Tol,
		SweepsBelowTol:      spec.SweepsBelowTol,
		MaxUpdatesPerWorker: *maxUpdates,
		DeltaThreshold:      *deltaThr,
		Fault: dist.Fault{
			DropProb:    faults.DropProb,
			ReorderProb: faults.ReorderProb,
			MaxDelay:    faults.MaxLinkDelay,
			Seed:        *seed,
		},
		Timeout: *timeout,
		Elastic: dist.Elastic{
			HeartbeatEvery:  elastic.HeartbeatEvery,
			CheckpointEvery: elastic.CheckpointEvery,
			MaxRejoinWait:   elastic.MaxRejoinWait,
			CheckpointPath:  elastic.CheckpointPath,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("converged=%v elapsed=%v updates per worker=%v\n",
		res.Converged, res.Elapsed, res.UpdatesPerWorker)
	fmt.Printf("messages sent=%d delivered=%d stale=%d dropped=%d reordered=%d\n",
		res.MessagesSent, res.MessagesDelivered, res.MessagesStale,
		res.MessagesDropped, res.MessagesReordered)
	fmt.Printf("bytes out=%d in=%d probe rounds=%d\n",
		res.BytesSent, res.BytesReceived, res.ProbeRounds)
	if res.WorkersLost > 0 || res.WorkersRejoined > 0 || res.Resharding > 0 {
		fmt.Printf("workers lost=%d rejoined=%d reshardings=%d\n",
			res.WorkersLost, res.WorkersRejoined, res.Resharding)
	}
	if inst.Describe != nil {
		fmt.Println(inst.Describe(res.X))
	}
	if !res.Converged {
		os.Exit(1)
	}
}

func runDistWorker(args []string) {
	fs := flag.NewFlagSet("dist-worker", flag.ExitOnError)
	connect := fs.String("connect", "127.0.0.1:7000", "coordinator address")
	scenario := fs.String("scenario", "lasso", "workload scenario (must match the coordinator's)")
	n := fs.Int("n", 0, "problem size; 0 = scenario default (must match the coordinator's)")
	seed := fs.Uint64("seed", 1, "workload seed (must match the coordinator's)")
	retryWait := fs.Duration("retry-wait", 0, "keep retrying dial/register this long (capped exponential backoff with jitter); 0 = single attempt")
	retrySeed := fs.Uint64("retry-seed", 0, "backoff jitter seed; seed it from the worker's identity for reproducible retry schedules")
	fs.Parse(args)

	inst, err := distScenario(*scenario, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	err = dist.ConnectWorker(*connect, inst.Spec.Op, dist.WorkerOptions{
		Rejoin: dist.Rejoin{MaxWait: *retryWait, Seed: *retrySeed},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
