package main

// The chaos subcommand runs the elastic dist engine under a deterministic
// worker-churn schedule: a full in-process deployment (coordinator + TCP
// workers over localhost, exactly what the "dist" engine runs) where
// scheduled workers are severed mid-solve — their sockets closed, exactly
// what a crashed process looks like from the network — and replacements
// rejoin through the elastic accept loop and warm-start from the last
// checkpoint:
//
//	asyncsolve chaos -scenario lasso -workers 8 -kills 2 -topology mesh \
//	    -drop 0.05 -reorder 0.05 -maxdelay 200us
//
// Scenario problems small enough to demo converge in milliseconds — before
// the first kill would fire — so by default every component evaluation is
// stretched by -evaldelay, making the solve span the churn schedule the
// same way the package's chaos tests do. The run fails (exit 1) unless the
// solve converges despite the churn AND, when kills are scheduled with
// restarts, every killed worker was observed lost and rejoined; the summary
// reports the loss/rejoin/re-shard counters either way.

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/dist"
	"repro/internal/operators"
)

// slowOperator stretches each component evaluation by a fixed delay so a
// demo-sized problem's solve outlasts the churn schedule. It implements
// only the base Operator interface on purpose: EvalBlock then takes the
// componentwise path and the delay applies per component.
type slowOperator struct {
	op    operators.Operator
	delay time.Duration
}

func (s slowOperator) Dim() int { return s.op.Dim() }
func (s slowOperator) Component(i int, x []float64) float64 {
	time.Sleep(s.delay)
	return s.op.Component(i, x)
}
func (s slowOperator) Name() string { return "slow(" + s.op.Name() + ")" }

func runChaos(args []string) {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	scenario := fs.String("scenario", "lasso", "workload scenario")
	n := fs.Int("n", 0, "problem size; 0 = scenario default")
	seed := fs.Uint64("seed", 1, "workload and fault seed")
	workers := fs.Int("workers", 8, "worker count")
	topology := fs.String("topology", "star", "data plane: star | mesh")
	tol := fs.Float64("tol", -1, "convergence tolerance; negative = scenario default")
	kills := fs.Int("kills", 2, "number of workers killed mid-solve")
	killAfter := fs.Duration("kill-after", 100*time.Millisecond, "when the first kill fires")
	killSpacing := fs.Duration("kill-spacing", 50*time.Millisecond, "delay between consecutive kills")
	restartAfter := fs.Duration("restart-after", 100*time.Millisecond, "kill-to-replacement-launch delay; negative = never restart")
	evalDelay := fs.Duration("evaldelay", 300*time.Microsecond, "per-component evaluation stretch so the solve spans the churn schedule; 0 = full speed")
	timeout := fs.Duration("timeout", 2*time.Minute, "run timeout")
	// Fault and elastic knobs come from the shared knob table.
	knobs := repro.RegisterKnobFlags(fs, "faults", "elastic")
	fs.Parse(args)

	knobSpec, err := knobs.Spec()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	faults := knobSpec.Faults()
	elastic := knobSpec.Elastic()
	if elastic.HeartbeatEvery == 0 {
		elastic.HeartbeatEvery = 20 * time.Millisecond
	}
	if *kills < 0 || *kills > *workers {
		fmt.Fprintf(os.Stderr, "chaos: -kills %d outside [0, %d workers]\n", *kills, *workers)
		os.Exit(2)
	}

	inst, err := distScenario(*scenario, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	spec := inst.Spec
	if *tol >= 0 {
		spec.Tol = *tol
	}
	op := spec.Op
	if *evalDelay > 0 {
		op = slowOperator{op: spec.Op, delay: *evalDelay}
	}

	plan := dist.ChaosPlan{}
	for i := 0; i < *kills; i++ {
		plan.Events = append(plan.Events, dist.ChaosEvent{
			Worker:       i,
			KillAfter:    *killAfter + time.Duration(i)**killSpacing,
			RestartAfter: *restartAfter,
		})
	}

	fmt.Printf("chaos: scenario=%s n=%d topology=%s workers=%d kills=%d heartbeat=%v\n",
		*scenario, spec.Op.Dim(), *topology, *workers, *kills, elastic.HeartbeatEvery)
	res, err := dist.RunChaos(dist.Config{
		Op:             op,
		Workers:        *workers,
		Topology:       *topology,
		X0:             spec.X0,
		Tol:            spec.Tol,
		SweepsBelowTol: spec.SweepsBelowTol,
		Fault: dist.Fault{
			DropProb:    faults.DropProb,
			ReorderProb: faults.ReorderProb,
			MaxDelay:    faults.MaxLinkDelay,
			Seed:        *seed,
		},
		Timeout: *timeout,
		Elastic: dist.Elastic{
			HeartbeatEvery:  elastic.HeartbeatEvery,
			CheckpointEvery: elastic.CheckpointEvery,
			MaxRejoinWait:   elastic.MaxRejoinWait,
			CheckpointPath:  elastic.CheckpointPath,
		},
	}, plan)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("converged=%v elapsed=%v updates per worker=%v\n",
		res.Converged, res.Elapsed, res.UpdatesPerWorker)
	fmt.Printf("workers lost=%d rejoined=%d reshardings=%d probe rounds=%d\n",
		res.WorkersLost, res.WorkersRejoined, res.Resharding, res.ProbeRounds)
	fmt.Printf("messages sent=%d delivered=%d stale=%d dropped=%d reordered=%d\n",
		res.MessagesSent, res.MessagesDelivered, res.MessagesStale,
		res.MessagesDropped, res.MessagesReordered)
	if inst.Describe != nil {
		fmt.Println(inst.Describe(res.X))
	}
	if !res.Converged {
		fmt.Fprintln(os.Stderr, "chaos: solve did not converge under churn")
		os.Exit(1)
	}
	if *kills > 0 && *restartAfter >= 0 {
		if res.WorkersLost < int64(*kills) || res.WorkersRejoined < int64(*kills) {
			fmt.Fprintf(os.Stderr,
				"chaos: scheduled %d kill(s) with restarts but observed lost=%d rejoined=%d — the churn never landed (solve too fast? raise -evaldelay)\n",
				*kills, res.WorkersLost, res.WorkersRejoined)
			os.Exit(1)
		}
	}
}
