package main

// The serve subcommand runs solver-as-a-service: the internal/server HTTP
// job server over the unified Solve facade.
//
//	asyncsolve serve -addr 127.0.0.1:8080 -queue 16 -concurrency 4
//
// POST /v1/solve takes a JSON job (scenario, n, seed, engine, delay, ...)
// and streams NDJSON events ending in the terminal Report; GET /v1/scenarios
// lists workloads; GET /healthz reports queue/worker state. SIGINT/SIGTERM
// drains gracefully: running and queued jobs finish, new jobs get 503.

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func runServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	queue := fs.Int("queue", 16, "admission-control queue depth; a full queue answers 503")
	concurrency := fs.Int("concurrency", 0, "concurrent solves (0 = GOMAXPROCS)")
	maxJobTime := fs.Duration("max-job-time", 60*time.Second, "hard cap on any job's run time")
	progressEvery := fs.Duration("progress-every", 500*time.Millisecond, "NDJSON progress event period")
	retryAfter := fs.Duration("retry-after", time.Second, "Retry-After hint sent with 503 rejections")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "grace period for in-flight jobs on shutdown")
	quiet := fs.Bool("quiet", false, "suppress per-job log lines")
	fs.Parse(args)

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	srv := server.New(server.Config{
		Addr:          *addr,
		QueueDepth:    *queue,
		Workers:       *concurrency,
		MaxJobTime:    *maxJobTime,
		ProgressEvery: *progressEvery,
		RetryAfter:    *retryAfter,
		Logf:          logf,
	})
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	// The one line scripts scrape for the bound address.
	fmt.Printf("serving on http://%s\n", srv.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop() // a second signal kills immediately instead of draining

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Fatalf("drain: %v", err)
	}
}
