package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"time"

	"repro/internal/benchsuite"
)

// runBench implements `asyncsolve bench`: it executes the shared benchmark
// suite (engine/kernel micro-benchmarks and, optionally, the full
// experiment suite timed once each) and writes a machine-readable
// BENCH_<rev>.json capture — the artifact the CI benchmark job uploads so
// every revision leaves a performance record.
func runBench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	out := fs.String("out", "", "output path; default BENCH_<rev>.json in the working directory")
	rev := fs.String("rev", "", "revision label; default: short git revision, else \"dev\"")
	benchtime := fs.Duration("benchtime", time.Second, "minimum measuring time per micro-benchmark")
	quick := fs.Bool("quick", false, "single repetition per case (CI smoke mode)")
	match := fs.String("match", "", "run only cases whose name matches this regexp (e.g. ^BlockEval)")
	withExperiments := fs.Bool("experiments", true, "also time the full F1-E17 experiment suite (once each)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), `usage: asyncsolve bench [flags]

Runs the engine micro-benchmarks (and, by default, the complete experiment
suite once each) and writes BENCH_<rev>.json with ns/op, allocs/op,
bytes/op and solve rate per case. See "Measuring performance" in the
package documentation for the JSON schema.

`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	if *rev == "" {
		*rev = benchsuite.Revision()
	}
	benchtimeSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "benchtime" {
			benchtimeSet = true
		}
	})
	if *quick && benchtimeSet {
		fmt.Fprintln(os.Stderr, "asyncsolve bench: -quick and -benchtime are mutually exclusive")
		os.Exit(2)
	}
	bt := *benchtime
	if *quick {
		bt = 0 // Measure always performs at least one repetition
	}

	cases := benchsuite.MicroCases()
	if *withExperiments {
		cases = append(cases, benchsuite.ExperimentCases()...)
	}
	if *match != "" {
		re, err := regexp.Compile(*match)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asyncsolve bench: bad -match regexp: %v\n", err)
			os.Exit(2)
		}
		kept := cases[:0]
		for _, c := range cases {
			if re.MatchString(c.Name) {
				kept = append(kept, c)
			}
		}
		cases = kept
		if len(cases) == 0 {
			fmt.Fprintf(os.Stderr, "asyncsolve bench: -match %q selects no cases\n", *match)
			os.Exit(2)
		}
	}

	results := make([]benchsuite.Result, 0, len(cases))
	failed := 0
	for _, c := range cases {
		r := benchsuite.Measure(c, bt)
		results = append(results, r)
		if r.Err != "" {
			failed++
			fmt.Fprintf(os.Stderr, "%-28s FAILED: %s\n", c.Name, r.Err)
			continue
		}
		line := fmt.Sprintf("%-28s %12.0f ns/op %10.1f allocs/op", r.Name, r.NsPerOp, r.AllocsPerOp)
		if r.SolveRate > 0 {
			line += fmt.Sprintf(" %14.0f units/s", r.SolveRate)
		}
		fmt.Println(line)
	}

	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", *rev)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	capture := benchsuite.NewFile(*rev, bt, results)
	capture.Quick = *quick
	if err := capture.WriteJSON(f); err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d cases, revision %s)\n", path, len(results), *rev)
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d case(s) failed\n", failed)
		os.Exit(1)
	}
}
