package main

// The load subcommand drives a running solve server (asyncsolve serve) and
// reports sustained throughput and latency:
//
//	asyncsolve load -addr http://127.0.0.1:8080 -duration 10s -concurrency 8
//	asyncsolve load -rate 50 -scenarios lasso,ridge,routing -duration 5s
//
// Closed loop (default): -concurrency workers each issue the next job as
// soon as the previous finishes — throughput finds the server's capacity.
// Open loop (-rate R): jobs are offered at R per second regardless of
// completions — admission control (503 + Retry-After) absorbs the excess.
// Scenarios from the -scenarios list are assigned round-robin.
//
// The exit code is 0 only if every ACCEPTED job converged; rejections are
// the admission-control design working and do not fail the run.

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/server"
)

type loadStats struct {
	mu          sync.Mutex
	latencies   []time.Duration
	converged   int
	unconverged int
	jobErrs     []string
	rejected    int
	transport   []string
	perScenario map[string]int
}

func (st *loadStats) record(scenario string, out *server.Outcome, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	switch {
	case err != nil:
		st.transport = append(st.transport, err.Error())
	case out.Rejected:
		st.rejected++
	case out.JobErr != "":
		st.jobErrs = append(st.jobErrs, out.JobErr)
	default:
		st.latencies = append(st.latencies, out.Latency)
		st.perScenario[scenario]++
		if out.Report != nil && out.Report.Converged {
			st.converged++
		} else {
			st.unconverged++
		}
	}
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func runLoad(args []string) {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "server base URL")
	duration := fs.Duration("duration", 10*time.Second, "how long to offer jobs")
	concurrency := fs.Int("concurrency", 4, "closed-loop workers (ignored with -rate)")
	rate := fs.Float64("rate", 0, "open-loop offered jobs per second (0 = closed loop)")
	scenarioList := fs.String("scenarios", "lasso", "comma-separated scenario mix, assigned round-robin")
	n := fs.Int("n", 16, "problem size for every job (0 = scenario defaults)")
	engineName := fs.String("engine", "model", "engine for every job")
	workers := fs.Int("workers", 0, "per-job worker count (0 = engine default)")
	seed := fs.Uint64("seed", 1, "base seed; job i uses seed+i")
	timeoutMS := fs.Int64("timeout-ms", 30000, "per-job timeout_ms sent to the server")
	// Tuning and fault knobs come from the shared knob table; explicitly-set
	// flags travel to the server as the matching JSON job fields.
	knobs := repro.RegisterKnobFlags(fs)
	fs.Parse(args)

	knobVals, err := knobs.Values()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	scenarios := strings.Split(*scenarioList, ",")
	for i := range scenarios {
		scenarios[i] = strings.TrimSpace(scenarios[i])
	}
	c := &server.Client{Base: strings.TrimRight(*addr, "/")}
	if _, err := c.Health(context.Background()); err != nil {
		log.Fatalf("server not reachable at %s: %v", *addr, err)
	}

	st := &loadStats{perScenario: make(map[string]int)}
	var jobIdx atomic.Int64
	oneJob := func(ctx context.Context) {
		i := jobIdx.Add(1) - 1
		scenario := scenarios[int(i)%len(scenarios)]
		out, err := c.Solve(ctx, server.JobRequest{
			Scenario:  scenario,
			N:         *n,
			Seed:      *seed + uint64(i),
			Engine:    *engineName,
			Workers:   *workers,
			TimeoutMS: *timeoutMS,
			Knobs:     knobVals,
		})
		st.record(scenario, out, err)
	}

	// In-flight jobs run to completion after the offering window closes, so
	// the tail is measured, not truncated; the context only guards against
	// a wedged server.
	ctx, cancel := context.WithTimeout(context.Background(),
		*duration+time.Duration(*timeoutMS)*time.Millisecond+30*time.Second)
	defer cancel()
	begin := time.Now()
	deadline := begin.Add(*duration)
	var wg sync.WaitGroup
	if *rate > 0 {
		// Open loop: offer at a fixed rate, completions be damned.
		tick := time.NewTicker(time.Duration(float64(time.Second) / *rate))
		defer tick.Stop()
		for time.Now().Before(deadline) {
			<-tick.C
			wg.Add(1)
			go func() { defer wg.Done(); oneJob(ctx) }()
		}
	} else {
		// Closed loop: each worker issues its next job on completion.
		for w := 0; w < *concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(deadline) {
					oneJob(ctx)
				}
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(begin)

	st.mu.Lock()
	defer st.mu.Unlock()
	done := st.converged + st.unconverged
	offered := done + st.rejected + len(st.jobErrs) + len(st.transport)
	mode := fmt.Sprintf("closed-loop concurrency=%d", *concurrency)
	if *rate > 0 {
		mode = fmt.Sprintf("open-loop rate=%.1f/s", *rate)
	}
	fmt.Printf("load: %s over %v (%s)\n", *scenarioList, elapsed.Round(time.Millisecond), mode)
	fmt.Printf("offered=%d completed=%d converged=%d rejected=%d errors=%d transport=%d\n",
		offered, done, st.converged, st.rejected, len(st.jobErrs), len(st.transport))
	fmt.Printf("solves/sec=%.2f\n", float64(st.converged)/elapsed.Seconds())
	if len(st.latencies) > 0 {
		sort.Slice(st.latencies, func(i, j int) bool { return st.latencies[i] < st.latencies[j] })
		fmt.Printf("latency p50=%v p90=%v p99=%v max=%v\n",
			percentile(st.latencies, 0.50).Round(time.Microsecond),
			percentile(st.latencies, 0.90).Round(time.Microsecond),
			percentile(st.latencies, 0.99).Round(time.Microsecond),
			st.latencies[len(st.latencies)-1].Round(time.Microsecond))
		// Power-of-two latency histogram.
		buckets := map[int]int{}
		for _, l := range st.latencies {
			b := 0
			for ms := l.Milliseconds(); ms > 0; ms >>= 1 {
				b++
			}
			buckets[b]++
		}
		keys := make([]int, 0, len(buckets))
		for k := range buckets {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		for _, k := range keys {
			lo, hi := 0, 1
			if k > 0 {
				lo, hi = 1<<(k-1), 1<<k
			}
			fmt.Printf("  %5d-%dms %d\n", lo, hi, buckets[k])
		}
	}
	names := make([]string, 0, len(st.perScenario))
	for name := range st.perScenario {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  scenario %-10s completed=%d\n", name, st.perScenario[name])
	}
	for i, e := range st.jobErrs {
		if i == 3 {
			fmt.Printf("  ... and %d more job errors\n", len(st.jobErrs)-3)
			break
		}
		fmt.Printf("  job error: %s\n", e)
	}
	for i, e := range st.transport {
		if i == 3 {
			fmt.Printf("  ... and %d more transport errors\n", len(st.transport)-3)
			break
		}
		fmt.Printf("  transport error: %s\n", e)
	}
	if st.unconverged > 0 || len(st.jobErrs) > 0 || len(st.transport) > 0 || st.converged == 0 {
		os.Exit(1)
	}
}
