// Command asyncsolve solves any registered scenario with a chosen engine
// and delay model through the unified repro.Solve API:
//
//	asyncsolve -scenario lasso    -engine sim    -delay bounded:8
//	asyncsolve -scenario netflow  -engine simsync
//	asyncsolve -scenario obstacle -engine model  -mode flexible -theta 0.7
//	asyncsolve -scenario routing  -engine shared -workers 8
//	asyncsolve -list
//
// It prints the unified solve summary (iterations, updates, macro-iterations,
// epochs, residual) plus quality metrics specific to the scenario. The
// legacy flags -problem (alias of -scenario) and -mode sync|async|flexible
// are still accepted.
//
// The bench subcommand runs the repository's benchmark suite and captures
// it as machine-readable JSON (the file CI uploads as an artifact):
//
//	asyncsolve bench                       # micro + experiment suite, ~1s per micro case
//	asyncsolve bench -quick                # single repetition per case (CI smoke)
//	asyncsolve bench -experiments=false    # micro-benchmarks only
//	asyncsolve bench -out BENCH_local.json # explicit output path
//
// The dist-coordinator and dist-worker subcommands deploy the TCP engine
// as separate OS processes (see dist.go in this package):
//
//	asyncsolve dist-coordinator -listen 127.0.0.1:7000 -workers 2 -scenario lasso &
//	asyncsolve dist-worker -connect 127.0.0.1:7000 -scenario lasso &
//	asyncsolve dist-worker -connect 127.0.0.1:7000 -scenario lasso
//
// The chaos subcommand (chaos.go) runs the elastic dist engine under a
// deterministic worker-churn schedule — scheduled kills and rejoins
// mid-solve — and fails unless the run converges anyway:
//
//	asyncsolve chaos -scenario lasso -workers 8 -kills 2 -topology mesh \
//	    -drop 0.05 -reorder 0.05 -maxdelay 200us
//
// The serve subcommand runs solver-as-a-service (see serve.go): an HTTP job
// server with admission control and NDJSON-streamed reports; load (load.go)
// drives it and reports sustained solves/sec with a latency histogram:
//
//	asyncsolve serve -addr 127.0.0.1:8080 -queue 16 &
//	asyncsolve load  -addr http://127.0.0.1:8080 -duration 10s -scenarios lasso,ridge,routing
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "bench":
			runBench(os.Args[2:])
			return
		case "bench-compare":
			runBenchCompare(os.Args[2:])
			return
		case "dist-coordinator":
			runDistCoordinator(os.Args[2:])
			return
		case "dist-worker":
			runDistWorker(os.Args[2:])
			return
		case "chaos":
			runChaos(os.Args[2:])
			return
		case "serve":
			runServe(os.Args[2:])
			return
		case "load":
			runLoad(os.Args[2:])
			return
		}
	}
	scenario := flag.String("scenario", "", "workload scenario (see -list)")
	problem := flag.String("problem", "", "legacy alias of -scenario")
	engineName := flag.String("engine", "model", "engine: model | sim | simsync | shared | message | dist")
	mode := flag.String("mode", "async", "model-engine mode: sync | async | flexible")
	delayName := flag.String("delay", "bounded:8", "delay model: fresh | constant:D | bounded:B | sqrt | log | ooo:W")
	n := flag.Int("n", 0, "problem size (features / nodes / grid side); 0 = scenario default")
	workers := flag.Int("workers", 0, "worker count for the sim/goroutine engines; 0 = default")
	topology := flag.String("topology", "", "dist-engine data plane: star | mesh (default star)")
	deltaThr := flag.Float64("delta", 0, "dist-engine flexible-communication threshold: ship only components that moved more than this since last shipped")
	theta := flag.Float64("theta", 0.5, "flexible blend fraction (model engine, mode=flexible)")
	flexK := flag.Int("flex", 0, "publish k uniform partial updates per phase (sim/shared engines)")
	tol := flag.Float64("tol", -1, "convergence tolerance; negative = scenario default, 0 = run to budget")
	maxIter := flag.Int("maxiter", 0, "iteration budget; 0 = scenario default")
	seed := flag.Uint64("seed", 1, "random seed")
	list := flag.Bool("list", false, "list registered scenarios and exit")
	// Tuning (-block-size, -intra-parallel, -gram-precompute) and fault
	// (-drop, -reorder, -maxdelay) knobs come from the shared knob table,
	// so this command, the dist coordinator, the server and the load
	// generator cannot drift apart.
	knobs := repro.RegisterKnobFlags(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, s := range repro.Scenarios() {
			fmt.Printf("%-10s n=%-5d %s\n", s.Name, s.DefaultN, s.Summary)
		}
		return
	}

	name := *scenario
	if name == "" {
		name = *problem
	}
	if name == "" {
		name = "lasso"
	}
	// Legacy -problem spellings and problem sizes from the pre-scenario
	// CLI (its -n default was 64, clamped per problem).
	if *problem != "" && *scenario == "" && *n == 0 {
		if *problem == "flow" {
			*n = 12
		} else {
			*n = 64
		}
	}
	if name == "flow" {
		name = "netflow"
	}

	engine, err := repro.EngineByName(*engineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	dm, err := repro.ParseDelay(*delayName, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	knobOpts, err := knobs.Options()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	knobSpec, err := knobs.Spec()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Build with the requested tuning so build-time choices (Gram form,
	// sharded precompute) see the knobs; the solve options re-apply the
	// same values plus any fault knobs.
	inst, err := repro.BuildScenarioTuned(name, *n, *seed, knobSpec.Tuning)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	opts := []repro.Option{
		repro.WithDelay(dm),
		repro.WithSeed(*seed),
	}
	opts = append(opts, knobOpts...)
	dim := inst.Spec.Op.Dim()
	// The mode switch is engine-aware: each regime maps onto the knob the
	// selected engine actually honours, and combinations the engine cannot
	// express are rejected rather than silently ignored.
	switch *mode {
	case "sync":
		switch engine {
		case repro.EngineModel:
			dm = repro.FreshDelay{}
			opts = append(opts, repro.WithSteering(repro.NewAllComponents(dim)),
				repro.WithDelay(dm))
		case repro.EngineSim, repro.EngineSimSync:
			engine = repro.EngineSimSync
		default:
			fmt.Fprintf(os.Stderr, "mode sync is not available on engine %s (use -engine model or simsync)\n", engine.Name())
			os.Exit(2)
		}
	case "async":
		// Scenario defaults (cyclic steering, free-running workers) apply.
	case "flexible":
		switch engine {
		case repro.EngineModel:
			opts = append(opts, repro.WithTheta(*theta))
		case repro.EngineSim, repro.EngineShared:
			if *flexK <= 0 {
				opts = append(opts, repro.WithFlexible(repro.UniformFlex(2)))
			}
		default:
			fmt.Fprintf(os.Stderr, "mode flexible is not available on engine %s (use -engine model, sim or shared)\n", engine.Name())
			os.Exit(2)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	opts = append(opts, repro.WithEngine(engine))
	if *workers > 0 {
		opts = append(opts, repro.WithWorkers(*workers))
	}
	if *topology != "" {
		if engine != repro.EngineDist {
			fmt.Fprintf(os.Stderr, "-topology only applies to the dist engine (got -engine %s)\n", engine.Name())
			os.Exit(2)
		}
		opts = append(opts, repro.WithTopology(*topology))
	}
	if *deltaThr != 0 {
		if engine != repro.EngineDist {
			fmt.Fprintf(os.Stderr, "-delta only applies to the dist engine (got -engine %s)\n", engine.Name())
			os.Exit(2)
		}
		// Negative values flow through so the engine rejects them loudly
		// instead of a typo'd sign silently running a different experiment.
		opts = append(opts, repro.WithDeltaThreshold(*deltaThr))
	}
	if *flexK > 0 {
		opts = append(opts, repro.WithFlexible(repro.UniformFlex(*flexK)))
	}
	if *tol >= 0 {
		opts = append(opts, repro.WithTol(*tol)) // 0 disables the stop
	}
	if *maxIter > 0 {
		opts = append(opts, repro.WithMaxIter(*maxIter), repro.WithMaxUpdates(*maxIter))
	}

	res, err := repro.Solve(inst.Spec, opts...)
	if err != nil {
		log.Fatal(err)
	}

	// The delay label function only drives the model engine; the other
	// engines derive their delays from the execution schedule.
	delayDesc := dm.Name()
	if engine != repro.EngineModel {
		delayDesc = "engine-schedule"
	}
	fmt.Printf("scenario=%s engine=%s mode=%s delay=%s n=%d\n",
		name, res.Engine, *mode, delayDesc, dim)
	fmt.Printf("converged=%v iterations=%d updates=%d residual=%.3e\n",
		res.Converged, res.Iterations, res.Updates, res.FinalResidual)
	if len(res.Boundaries) > 0 || len(res.Epochs) > 0 {
		fmt.Printf("macro-iterations=%d (def2) %d (strict), epochs=%d\n",
			len(res.Boundaries), len(res.StrictBoundaries), len(res.Epochs))
	}
	if res.Time > 0 {
		fmt.Printf("virtual time=%.3f messages sent=%d dropped=%d\n",
			res.Time, res.MessagesSent, res.MessagesDropped)
	}
	if res.Elapsed > 0 {
		fmt.Printf("elapsed=%v updates per worker=%v\n", res.Elapsed, res.UpdatesPerWorker)
	}
	if inst.Describe != nil {
		fmt.Println(inst.Describe(res.X))
	}
	// A run with the stop deliberately disabled (-tol 0) completes by
	// exhausting its budget; that is success, not a convergence failure.
	if !res.Converged && *tol != 0 {
		os.Exit(1)
	}
}
