// Command asyncsolve is a CLI for solving the library's workloads with a
// chosen execution mode and delay model:
//
//	asyncsolve -problem lasso      -mode async  -delay bounded -n 64
//	asyncsolve -problem flow       -mode sync
//	asyncsolve -problem obstacle   -mode flexible -theta 0.7
//	asyncsolve -problem routing    -delay sqrt
//
// It prints the solve summary: iterations, macro-iterations, epochs, final
// residual and solution quality metrics specific to the problem.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/mldata"
	"repro/internal/netflow"
	"repro/internal/obstacle"
	"repro/internal/operators"
	"repro/internal/prox"
	"repro/internal/sssp"
	"repro/internal/steering"
)

func main() {
	problem := flag.String("problem", "lasso", "workload: lasso | ridge | flow | obstacle | routing")
	mode := flag.String("mode", "async", "execution: sync | async | flexible")
	delayName := flag.String("delay", "bounded", "delay model: fresh | bounded | sqrt | log | ooo")
	n := flag.Int("n", 64, "problem size (features / nodes / grid side)")
	theta := flag.Float64("theta", 0.5, "flexible blend fraction (mode=flexible)")
	tol := flag.Float64("tol", 1e-9, "convergence tolerance")
	maxIter := flag.Int("maxiter", 5000000, "iteration budget")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	var dm delay.Model
	switch *delayName {
	case "fresh":
		dm = delay.Fresh{}
	case "bounded":
		dm = delay.BoundedRandom{B: 8, Seed: *seed + 1}
	case "sqrt":
		dm = delay.SqrtGrowth{}
	case "log":
		dm = delay.LogGrowth{}
	case "ooo":
		dm = delay.OutOfOrder{W: 16, Seed: *seed + 2}
	default:
		fmt.Fprintf(os.Stderr, "unknown delay model %q\n", *delayName)
		os.Exit(2)
	}

	var (
		op     operators.Operator
		x0     []float64
		report func(x []float64)
	)

	switch *problem {
	case "lasso", "ridge":
		reg, err := mldata.NewRegression(mldata.RegressionConfig{
			N: *n, Coupling: 0.3, Sparsity: 0.5, Noise: 0.01, Reg: 0.1, Seed: *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		f := reg.Smooth()
		gamma := operators.MaxStep(f)
		if *problem == "lasso" {
			bf := operators.NewProxGradBF(f, prox.L1{Lambda: 0.02}, gamma)
			op = bf
			report = func(x []float64) {
				xp := bf.Primal(x)
				fmt.Printf("lasso MSE: %.6f (truth %.6f)\n", reg.MSE(xp), reg.MSE(reg.XTrue))
			}
		} else {
			op = operators.NewGradOp(f, gamma)
			report = func(x []float64) {
				fmt.Printf("ridge MSE: %.6f (truth %.6f)\n", reg.MSE(x), reg.MSE(reg.XTrue))
			}
		}
		x0 = make([]float64, f.Dim())

	case "flow":
		side := 6
		if *n >= 4 && *n <= 64 {
			side = *n
			if side > 12 {
				side = 12
			}
		}
		net, err := netflow.Grid(side, side, 4.0, 2.5, 0.2, *seed)
		if err != nil {
			log.Fatal(err)
		}
		op = netflow.NewRelaxOp(net)
		x0 = make([]float64, net.NumNodes)
		report = func(x []float64) {
			rep := net.CheckKKT(x)
			fmt.Printf("network flow: max imbalance %.2e, primal cost %.4f\n",
				rep.MaxImbalance, rep.Cost)
		}

	case "obstacle":
		side := 16
		if *n >= 4 && *n <= 128 {
			side = *n
		}
		p := obstacle.Membrane(side)
		op = p
		x0 = p.Supersolution()
		report = func(x []float64) {
			rep := p.CheckComplementarity(x)
			fmt.Printf("obstacle: min gap %.2e, worst residual %.2e, slack %.2e, contact %d/%d\n",
				rep.MinGap, rep.WorstResidual, rep.WorstSlackProduct,
				len(p.ContactSet(x, 1e-8)), p.Dim())
		}

	case "routing":
		g, err := sssp.RandomGraph(*n, 3**n, *seed)
		if err != nil {
			log.Fatal(err)
		}
		bf, err := sssp.NewBellmanFordOp(g, 0)
		if err != nil {
			log.Fatal(err)
		}
		op = bf
		x0 = bf.InitialDistances()
		want := g.Dijkstra(0)
		report = func(x []float64) {
			dev := 0.0
			for i := range want {
				d := x[i] - want[i]
				if d < 0 {
					d = -d
				}
				if d > dev {
					dev = d
				}
			}
			fmt.Printf("routing: max deviation from Dijkstra %.2e\n", dev)
		}

	default:
		fmt.Fprintf(os.Stderr, "unknown problem %q\n", *problem)
		os.Exit(2)
	}

	cfg := core.Config{
		Op:      op,
		Delay:   dm,
		X0:      x0,
		Tol:     *tol,
		MaxIter: *maxIter,
	}
	switch *mode {
	case "sync":
		cfg.Steering = steering.NewAll(op.Dim())
		cfg.Delay = delay.Fresh{}
	case "async":
		cfg.Steering = steering.NewCyclic(op.Dim())
	case "flexible":
		cfg.Steering = steering.NewCyclic(op.Dim())
		cfg.Theta = *theta
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	res, err := core.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("problem=%s mode=%s delay=%s n=%d\n", *problem, *mode, dm.Name(), op.Dim())
	fmt.Printf("converged=%v iterations=%d updates=%d residual=%.3e\n",
		res.Converged, res.Iterations, res.Updates, res.FinalResidual)
	fmt.Printf("macro-iterations=%d (def2) %d (strict), epochs=%d\n",
		len(res.Boundaries), len(res.StrictBoundaries), len(res.Epochs))
	if report != nil {
		report(res.X)
	}
	if !res.Converged {
		os.Exit(1)
	}
}
