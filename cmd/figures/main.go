// Command figures regenerates the paper's Fig. 1 (asynchronous iterations)
// and Fig. 2 (flexible communication) as ASCII execution traces, optionally
// exporting the raw event logs as CSV for external plotting.
//
// Usage:
//
//	figures                 # print both figures
//	figures -width 100      # wider time axis
//	figures -csv out_dir    # also write fig1.csv / fig2.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro"
)

func main() {
	width := flag.Int("width", 76, "time-axis width in characters")
	csvDir := flag.String("csv", "", "directory to write fig1.csv / fig2.csv (optional)")
	flag.Parse()

	run := func(flex repro.FlexSchedule) *repro.TraceLog {
		a := repro.DenseFromRows([][]float64{
			{0, 0.5},
			{0.5, 0},
		})
		op := repro.NewLinear(a, []float64{1, 1})
		lg := &repro.TraceLog{}
		_, err := repro.Solve(repro.NewSpec(op),
			repro.WithEngine(repro.EngineSim),
			repro.WithWorkers(2),
			repro.WithX0([]float64{10, 10}), repro.WithXStar([]float64{2, 2}),
			repro.WithMaxUpdates(9),
			repro.WithCost(repro.HeterogeneousCost([]float64{1.0, 1.6})),
			repro.WithLatency(repro.FixedLatency(0.25)),
			repro.WithFlexible(flex),
			repro.WithSeed(1),
			repro.WithTrace(lg),
		)
		if err != nil {
			log.Fatal(err)
		}
		return lg
	}

	fig1 := run(repro.NoFlex())
	fig2 := run(repro.UniformFlex(2))

	fmt.Println("Figure 1: parallel or distributed asynchronous iterative algorithm")
	fmt.Println()
	fmt.Print(repro.RenderGantt(fig1, *width))
	fmt.Println()
	fmt.Println("Figure 2: asynchronous iterative algorithm with flexible communication")
	fmt.Println()
	fmt.Print(repro.RenderGantt(fig2, *width))

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
		for name, lg := range map[string]*repro.TraceLog{"fig1.csv": fig1, "fig2.csv": fig2} {
			f, err := os.Create(filepath.Join(*csvDir, name))
			if err != nil {
				log.Fatal(err)
			}
			if err := repro.WriteTraceCSV(f, lg); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("\nwrote %s/fig1.csv and %s/fig2.csv\n", *csvDir, *csvDir)
	}
}
