// Reprolint runs the repro static-analysis suite: nine analyzers that
// mechanically enforce the repo's hot-path, bit-identity and concurrency
// invariants (see internal/analysis and the "Static analysis" section of
// doc.go). Four of them (determinism, goroutinelife, slotbudget,
// lockdiscipline) are path-sensitive: they run on the control-flow graph
// and dataflow engine of internal/analysis/cfg, so "Unlock missing on one
// branch" and "WaitGroup.Add on only one path" are real findings, not
// grep matches.
//
// Standalone, over package patterns (exit 1 when any diagnostic fires):
//
//	reprolint ./...
//	reprolint -hotpath=false ./internal/dist/...
//
// Or as a vet tool, one compilation unit at a time under the go command's
// build cache (the same -V=full / -flags / unit.cfg protocol
// x/tools/go/analysis/unitchecker implements):
//
//	go vet -vettool=$(which reprolint) ./...
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/ctxloop"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/goroutinelife"
	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/knobdrift"
	"repro/internal/analysis/lockdiscipline"
	"repro/internal/analysis/nodeprecated"
	"repro/internal/analysis/slotbudget"
	"repro/internal/analysis/vecorder"
)

// suite is the full analyzer suite, in reporting order.
var suite = []*analysis.Analyzer{
	hotpath.Analyzer,
	vecorder.Analyzer,
	ctxloop.Analyzer,
	knobdrift.Analyzer,
	nodeprecated.Analyzer,
	determinism.Analyzer,
	goroutinelife.Analyzer,
	slotbudget.Analyzer,
	lockdiscipline.Analyzer,
}

var (
	jsonFlag    = flag.Bool("json", false, "emit JSON output")
	contextFlag = flag.Int("c", -1, "display offending line with this many lines of context")
	enabled     = map[string]*bool{}
)

func main() {
	// The -V=full handshake identifies the tool to the go command's
	// build cache; it must answer before any other flag handling.
	for _, arg := range os.Args[1:] {
		if arg == "-V=full" || arg == "--V=full" {
			printVersion()
			return
		}
	}

	printFlags := flag.Bool("flags", false, "print analyzer flags in JSON (go vet protocol)")
	for _, a := range suite {
		enabled[a.Name] = flag.Bool(a.Name, true, "run the "+a.Name+" analyzer ("+a.Doc+")")
	}
	flag.Usage = usage
	flag.Parse()

	if *printFlags {
		printFlagsJSON()
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runUnit(args[0])
		return
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	runStandalone(args)
}

func usage() {
	fmt.Fprintf(os.Stderr, `reprolint enforces the repro hot-path, bit-identity and concurrency invariants.

Usage:
	reprolint [-<analyzer>=false ...] [packages]   # standalone; exit 1 on findings
	go vet -vettool=$(which reprolint) [packages]  # as a vet tool

Analyzers:
`)
	for _, a := range suite {
		fmt.Fprintf(os.Stderr, "	%-13s %s\n", a.Name, a.Doc)
	}
	os.Exit(2)
}

func enabledSuite() []*analysis.Analyzer {
	var out []*analysis.Analyzer
	for _, a := range suite {
		if on := enabled[a.Name]; on == nil || *on {
			out = append(out, a)
		}
	}
	return out
}

// runStandalone loads patterns via the go tool and analyzes every matched
// package.
func runStandalone(patterns []string) {
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}
	var findings []analysis.Finding
	for _, pkg := range pkgs {
		fs, err := analysis.RunAnalyzers(pkg, enabledSuite())
		if err != nil {
			fmt.Fprintln(os.Stderr, "reprolint:", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Pos.Filename != findings[j].Pos.Filename {
			return findings[i].Pos.Filename < findings[j].Pos.Filename
		}
		return findings[i].Pos.Offset < findings[j].Pos.Offset
	})
	if *jsonFlag {
		printJSON("command-line-arguments", findings)
		return
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "reprolint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// vetConfig is the JSON compilation-unit description the go command hands
// a -vettool (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes the single compilation unit described by cfgFile.
func runUnit(cfgFile string) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("cannot decode JSON config file %s: %v", cfgFile, err))
	}

	// The suite exports no facts, but writing the (empty) facts file lets
	// the go command cache this unit's run.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fatal(err)
		}
	}
	if cfg.VetxOnly {
		return // dependency pass: facts only, and we have none
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return
			}
			fatal(err)
		}
		files = append(files, f)
	}

	// Imports resolve through the export data the go command already
	// compiled (gc only; this repo never builds with gccgo).
	imp := analysis.ExportImporter(fset, func(path string) (string, bool) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		return f, ok
	})

	// Test variants arrive as "path [path.test]"; strip the variant so
	// path-scoped rules (vecorder's internal/vec exemption, ctxloop's
	// engine-package match) behave identically to the base package.
	path := cfg.ImportPath
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	pkg, info, err := analysis.Check(path, fset, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatal(err)
	}

	findings, err := analysis.RunAnalyzers(
		&analysis.Package{Path: path, Fset: fset, Files: files, Types: pkg, Info: info},
		enabledSuite())
	if err != nil {
		fatal(err)
	}

	if *jsonFlag {
		printJSON(cfg.ID, findings)
		return
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s\n", f.Pos, f.Message)
		if *contextFlag >= 0 {
			printContext(f)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// printContext echoes the offending line plus N lines of context, matching
// the unitchecker's -c flag.
func printContext(f analysis.Finding) {
	data, err := os.ReadFile(f.Pos.Filename)
	if err != nil {
		return
	}
	lines := strings.Split(string(data), "\n")
	for i := f.Pos.Line - *contextFlag; i <= f.Pos.Line+*contextFlag; i++ {
		if 1 <= i && i <= len(lines) {
			fmt.Fprintf(os.Stderr, "%d\t%s\n", i, lines[i-1])
		}
	}
}

// printJSON emits the analysisflags JSON tree shape:
// {"pkg": {"analyzer": [{posn, message}, ...]}}.
func printJSON(id string, findings []analysis.Finding) {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := map[string][]jsonDiag{}
	for _, f := range findings {
		byAnalyzer[f.Analyzer] = append(byAnalyzer[f.Analyzer], jsonDiag{Posn: f.Pos.String(), Message: f.Message})
	}
	tree := map[string]map[string][]jsonDiag{id: byAnalyzer}
	out, err := json.MarshalIndent(tree, "", "\t")
	if err != nil {
		fatal(err)
	}
	os.Stdout.Write(out)
	fmt.Println()
}

// printFlagsJSON answers the go command's -flags query with the flag list
// it may forward to this tool.
func printFlagsJSON() {
	type jsonFlagDesc struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlagDesc
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlagDesc{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		fatal(err)
	}
	os.Stdout.Write(data)
}

// printVersion answers -V=full: the go command hashes the reported build
// ID into its action cache keys, so it must change when the binary does.
// Hashing the executable itself reproduces the unitchecker behavior.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fatal(err)
	}
	fmt.Printf("%s version devel reprolint buildID=%02x\n", exe, string(h.Sum(nil)))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reprolint:", err)
	os.Exit(1)
}
