package repro

// The unified Report: every engine reports the shared outcome (final
// iterate, convergence, counts, error/residual series, macro-iteration
// sequences) in the same shape, so metrics and trace tooling consume any
// engine's run uniformly. Engine-specific detail stays reachable through
// the typed accessors.

import (
	"time"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/dist"
	"repro/internal/operators"
	"repro/internal/runtime"
	"repro/internal/vec"
)

// TimedError is a (virtual time, max-norm error) sample of the simulated
// engines' error trajectories.
type TimedError = des.TimedError

// Report is the outcome of one Solve call, uniform across engines. Fields
// an engine does not produce are zero; see the Engine docs in engine.go for
// the per-engine contract.
type Report struct {
	// Engine is the name of the engine that produced this report.
	Engine string
	// X is the final iterate.
	X []float64
	// Converged reports whether the tolerance was met.
	Converged bool
	// Iterations counts global iterations (model), updating phases (sim),
	// or barrier rounds (simsync); zero on the goroutine engines, whose
	// per-worker counts are in UpdatesPerWorker.
	Iterations int
	// Updates is the total number of component/block relaxations.
	Updates int
	// FinalResidual is the fixed-point residual ||F(x) - x||_inf at X.
	FinalResidual float64
	// FinalError is ||X - XStar||_inf (when XStar is known).
	FinalError float64
	// Errors[j] is the per-iteration max-norm error series (model engine
	// with XStar).
	Errors []float64
	// ErrorTrace samples (virtual time, error) (simulated engines with
	// XStar).
	ErrorTrace []TimedError
	// Boundaries is the Definition 2 macro-iteration sequence.
	Boundaries []int
	// StrictBoundaries is the suffix-guaranteed macro-iteration sequence
	// used for Theorem 1 validation.
	StrictBoundaries []int
	// Epochs is the epoch sequence of Mishchenko et al. [30].
	Epochs []int
	// Records is the per-iteration log (S_j, labels, worker) for offline
	// macro-iteration and epoch analysis.
	Records []IterationRecord
	// UpdatesPerWorker counts completed phases per worker (worker-based
	// engines).
	UpdatesPerWorker []int
	// MessagesSent / MessagesDropped / MessagesStale count transport
	// events (simulated, message and dist engines).
	MessagesSent, MessagesDropped, MessagesStale int64
	// MessagesReordered counts frames discarded at a directed link because
	// a later-sequenced frame from the same source had already been
	// delivered there; MessagesDuplicate counts link discards of frames
	// whose sequence number exactly matched the newest delivered (dist
	// engine — disjoint from each other and from MessagesStale/Dropped).
	MessagesReordered, MessagesDuplicate int64
	// BytesSent / BytesReceived count wire bytes through the coordinator
	// (dist engine).
	BytesSent, BytesReceived int64
	// Time is the virtual clock at stop (simulated engines).
	Time float64
	// Elapsed is the wall-clock duration (goroutine and dist engines).
	Elapsed time.Duration

	model      *core.Result
	sim        *des.Result
	simSync    *des.SyncResult
	concurrent *runtime.Result
	dist       *dist.Result
}

// finish fills in the outcome fields every engine can provide uniformly:
// the fixed-point residual at X and, when XStar is known, the exact error.
func (r *Report) finish(spec Spec) {
	if r.FinalResidual == 0 && r.X != nil {
		r.FinalResidual = operators.Residual(spec.Op, r.X)
	}
	if spec.XStar != nil && r.X != nil {
		r.FinalError = vec.DistInf(r.X, spec.XStar)
	}
}

// ModelDetail returns the mathematical-model engine's full result (for
// Theorem 1 checking and constraint (3) accounting) when this report came
// from EngineModel.
func (r *Report) ModelDetail() (*ModelResult, bool) { return r.model, r.model != nil }

// SimDetail returns the asynchronous simulator's full result when this
// report came from EngineSim.
func (r *Report) SimDetail() (*SimResult, bool) { return r.sim, r.sim != nil }

// SimSyncDetail returns the barrier-synchronous simulator's full result
// (idle and compute time per worker) when this report came from
// EngineSimSync.
func (r *Report) SimSyncDetail() (*SimSyncResult, bool) { return r.simSync, r.simSync != nil }

// ConcurrentDetail returns the goroutine runtime's full result when this
// report came from EngineShared or EngineMessage.
func (r *Report) ConcurrentDetail() (*ConcurrentResult, bool) {
	return r.concurrent, r.concurrent != nil
}

// DistDetail returns the TCP engine's full result when this report came
// from EngineDist: the topology that ran, probe-round accounting, and the
// per-link byte counters (DistResult.LinkBytes[i][j] is the data-plane
// wire bytes shipped from worker i to worker j — through the coordinator's
// relay on "star", directly over the worker-to-worker link on "mesh").
func (r *Report) DistDetail() (*DistResult, bool) { return r.dist, r.dist != nil }
