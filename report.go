package repro

// The unified Report: every engine reports the shared outcome (final
// iterate, convergence, counts, error/residual series, macro-iteration
// sequences) in the same shape, so metrics and trace tooling consume any
// engine's run uniformly. Engine-specific detail stays reachable through
// the typed accessors.

import (
	"encoding/json"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/dist"
	"repro/internal/operators"
	"repro/internal/runtime"
	"repro/internal/vec"
)

// TimedError is a (virtual time, max-norm error) sample of the simulated
// engines' error trajectories.
type TimedError = des.TimedError

// Report is the outcome of one Solve call, uniform across engines. Fields
// an engine does not produce are zero; see the Engine docs in engine.go for
// the per-engine contract.
//
// A Report is JSON-round-trippable: every exported field marshals under a
// stable snake_case key (Elapsed as integer nanoseconds under
// "elapsed_ns"), fields the engine did not produce are omitted, and the
// unexported per-engine detail never leaks — this is the terminal event
// the serving layer (internal/server) streams back verbatim. Non-finite
// floats (the routing workload iterates from +Inf distances, so error
// series legitimately contain them) encode as the strings "Infinity",
// "-Infinity" and "NaN", the protobuf-JSON convention. Unmarshalling
// restores every exported field; the typed detail accessors (ModelDetail,
// DistDetail, ...) of a decoded Report report "not present".
//
// The struct tags below document the wire keys; the authoritative codec is
// reportWire in this file (kept in sync by the golden key test).
type Report struct {
	// Engine is the name of the engine that produced this report.
	Engine string `json:"engine"`
	// X is the final iterate.
	X []float64 `json:"x"`
	// Converged reports whether the tolerance was met.
	Converged bool `json:"converged"`
	// Iterations counts global iterations (model), updating phases (sim),
	// or barrier rounds (simsync); zero on the goroutine engines, whose
	// per-worker counts are in UpdatesPerWorker.
	Iterations int `json:"iterations"`
	// Updates is the total number of component/block relaxations.
	Updates int `json:"updates"`
	// FinalResidual is the fixed-point residual ||F(x) - x||_inf at X.
	FinalResidual float64 `json:"final_residual"`
	// FinalError is ||X - XStar||_inf (when XStar is known).
	FinalError float64 `json:"final_error,omitempty"`
	// Errors[j] is the per-iteration max-norm error series (model engine
	// with XStar).
	Errors []float64 `json:"errors,omitempty"`
	// ErrorTrace samples (virtual time, error) (simulated engines with
	// XStar).
	ErrorTrace []TimedError `json:"error_trace,omitempty"`
	// Boundaries is the Definition 2 macro-iteration sequence.
	Boundaries []int `json:"boundaries,omitempty"`
	// StrictBoundaries is the suffix-guaranteed macro-iteration sequence
	// used for Theorem 1 validation.
	StrictBoundaries []int `json:"strict_boundaries,omitempty"`
	// Epochs is the epoch sequence of Mishchenko et al. [30].
	Epochs []int `json:"epochs,omitempty"`
	// Records is the per-iteration log (S_j, labels, worker) for offline
	// macro-iteration and epoch analysis.
	Records []IterationRecord `json:"records,omitempty"`
	// UpdatesPerWorker counts completed phases per worker (worker-based
	// engines).
	UpdatesPerWorker []int `json:"updates_per_worker,omitempty"`
	// MessagesSent / MessagesDropped / MessagesStale count transport
	// events (simulated, message and dist engines).
	MessagesSent    int64 `json:"messages_sent,omitempty"`
	MessagesDropped int64 `json:"messages_dropped,omitempty"`
	MessagesStale   int64 `json:"messages_stale,omitempty"`
	// MessagesReordered counts frames discarded at a directed link because
	// a later-sequenced frame from the same source had already been
	// delivered there; MessagesDuplicate counts link discards of frames
	// whose sequence number exactly matched the newest delivered (dist
	// engine — disjoint from each other and from MessagesStale/Dropped).
	MessagesReordered int64 `json:"messages_reordered,omitempty"`
	MessagesDuplicate int64 `json:"messages_duplicate,omitempty"`
	// BytesSent / BytesReceived count wire bytes through the coordinator
	// (dist engine).
	BytesSent     int64 `json:"bytes_sent,omitempty"`
	BytesReceived int64 `json:"bytes_received,omitempty"`
	// WorkersLost / WorkersRejoined count worker links declared dead and
	// fresh connections installed into a vacated slot mid-solve;
	// Resharding counts completed re-shard barriers (dist engine under
	// WithElastic — all zero on a churn-free run).
	WorkersLost     int64 `json:"workers_lost,omitempty"`
	WorkersRejoined int64 `json:"workers_rejoined,omitempty"`
	Resharding      int64 `json:"resharding,omitempty"`
	// Time is the virtual clock at stop (simulated engines).
	Time float64 `json:"time,omitempty"`
	// Elapsed is the wall-clock duration (goroutine and dist engines),
	// marshalled as integer nanoseconds.
	Elapsed time.Duration `json:"elapsed_ns,omitempty"`

	model      *core.Result
	sim        *des.Result
	simSync    *des.SyncResult
	concurrent *runtime.Result
	dist       *dist.Result
}

// jsonFloat is a float64 whose JSON form survives non-finite values:
// Inf/NaN encode as the strings "Infinity", "-Infinity", "NaN" (bare JSON
// numbers cannot represent them and encoding/json refuses to emit them).
type jsonFloat float64

func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"Infinity"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Infinity"`), nil
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	}
	return json.Marshal(v)
}

func (f *jsonFloat) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"Infinity"`:
		*f = jsonFloat(math.Inf(1))
		return nil
	case `"-Infinity"`:
		*f = jsonFloat(math.Inf(-1))
		return nil
	case `"NaN"`:
		*f = jsonFloat(math.NaN())
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = jsonFloat(v)
	return nil
}

func toJSONFloats(xs []float64) []jsonFloat {
	if xs == nil {
		return nil
	}
	out := make([]jsonFloat, len(xs))
	for i, v := range xs {
		out[i] = jsonFloat(v)
	}
	return out
}

func fromJSONFloats(xs []jsonFloat) []float64 {
	if xs == nil {
		return nil
	}
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = float64(v)
	}
	return out
}

// timedErrorWire mirrors TimedError with non-finite-safe floats.
type timedErrorWire struct {
	Time  jsonFloat `json:"time"`
	Error jsonFloat `json:"error"`
}

// reportWire is Report's wire form: same keys as the struct tags above,
// with every float routed through jsonFloat so non-finite values survive.
type reportWire struct {
	Engine            string            `json:"engine"`
	X                 []jsonFloat       `json:"x"`
	Converged         bool              `json:"converged"`
	Iterations        int               `json:"iterations"`
	Updates           int               `json:"updates"`
	FinalResidual     jsonFloat         `json:"final_residual"`
	FinalError        jsonFloat         `json:"final_error,omitempty"`
	Errors            []jsonFloat       `json:"errors,omitempty"`
	ErrorTrace        []timedErrorWire  `json:"error_trace,omitempty"`
	Boundaries        []int             `json:"boundaries,omitempty"`
	StrictBoundaries  []int             `json:"strict_boundaries,omitempty"`
	Epochs            []int             `json:"epochs,omitempty"`
	Records           []IterationRecord `json:"records,omitempty"`
	UpdatesPerWorker  []int             `json:"updates_per_worker,omitempty"`
	MessagesSent      int64             `json:"messages_sent,omitempty"`
	MessagesDropped   int64             `json:"messages_dropped,omitempty"`
	MessagesStale     int64             `json:"messages_stale,omitempty"`
	MessagesReordered int64             `json:"messages_reordered,omitempty"`
	MessagesDuplicate int64             `json:"messages_duplicate,omitempty"`
	BytesSent         int64             `json:"bytes_sent,omitempty"`
	BytesReceived     int64             `json:"bytes_received,omitempty"`
	WorkersLost       int64             `json:"workers_lost,omitempty"`
	WorkersRejoined   int64             `json:"workers_rejoined,omitempty"`
	Resharding        int64             `json:"resharding,omitempty"`
	Time              jsonFloat         `json:"time,omitempty"`
	Elapsed           time.Duration     `json:"elapsed_ns,omitempty"`
}

// MarshalJSON encodes the report in its stable wire form (see the type
// docs: snake_case keys, non-finite floats as strings, detail omitted).
func (r Report) MarshalJSON() ([]byte, error) {
	w := reportWire{
		Engine:            r.Engine,
		X:                 toJSONFloats(r.X),
		Converged:         r.Converged,
		Iterations:        r.Iterations,
		Updates:           r.Updates,
		FinalResidual:     jsonFloat(r.FinalResidual),
		FinalError:        jsonFloat(r.FinalError),
		Errors:            toJSONFloats(r.Errors),
		Boundaries:        r.Boundaries,
		StrictBoundaries:  r.StrictBoundaries,
		Epochs:            r.Epochs,
		Records:           r.Records,
		UpdatesPerWorker:  r.UpdatesPerWorker,
		MessagesSent:      r.MessagesSent,
		MessagesDropped:   r.MessagesDropped,
		MessagesStale:     r.MessagesStale,
		MessagesReordered: r.MessagesReordered,
		MessagesDuplicate: r.MessagesDuplicate,
		BytesSent:         r.BytesSent,
		BytesReceived:     r.BytesReceived,
		WorkersLost:       r.WorkersLost,
		WorkersRejoined:   r.WorkersRejoined,
		Resharding:        r.Resharding,
		Time:              jsonFloat(r.Time),
		Elapsed:           r.Elapsed,
	}
	if r.ErrorTrace != nil {
		w.ErrorTrace = make([]timedErrorWire, len(r.ErrorTrace))
		for i, te := range r.ErrorTrace {
			w.ErrorTrace[i] = timedErrorWire{Time: jsonFloat(te.Time), Error: jsonFloat(te.Error)}
		}
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the wire form back into a Report. The decoded
// report carries no engine detail (the typed accessors report absence).
func (r *Report) UnmarshalJSON(b []byte) error {
	var w reportWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*r = Report{
		Engine:            w.Engine,
		X:                 fromJSONFloats(w.X),
		Converged:         w.Converged,
		Iterations:        w.Iterations,
		Updates:           w.Updates,
		FinalResidual:     float64(w.FinalResidual),
		FinalError:        float64(w.FinalError),
		Errors:            fromJSONFloats(w.Errors),
		Boundaries:        w.Boundaries,
		StrictBoundaries:  w.StrictBoundaries,
		Epochs:            w.Epochs,
		Records:           w.Records,
		UpdatesPerWorker:  w.UpdatesPerWorker,
		MessagesSent:      w.MessagesSent,
		MessagesDropped:   w.MessagesDropped,
		MessagesStale:     w.MessagesStale,
		MessagesReordered: w.MessagesReordered,
		MessagesDuplicate: w.MessagesDuplicate,
		BytesSent:         w.BytesSent,
		BytesReceived:     w.BytesReceived,
		WorkersLost:       w.WorkersLost,
		WorkersRejoined:   w.WorkersRejoined,
		Resharding:        w.Resharding,
		Time:              float64(w.Time),
		Elapsed:           w.Elapsed,
	}
	if w.ErrorTrace != nil {
		r.ErrorTrace = make([]TimedError, len(w.ErrorTrace))
		for i, te := range w.ErrorTrace {
			r.ErrorTrace[i] = TimedError{Time: float64(te.Time), Error: float64(te.Error)}
		}
	}
	return nil
}

// finish fills in the outcome fields every engine can provide uniformly:
// the fixed-point residual at X and, when XStar is known, the exact error.
func (r *Report) finish(spec Spec) {
	if r.FinalResidual == 0 && r.X != nil {
		r.FinalResidual = operators.Residual(spec.Op, r.X)
	}
	if spec.XStar != nil && r.X != nil {
		r.FinalError = vec.DistInf(r.X, spec.XStar)
	}
}

// ModelDetail returns the mathematical-model engine's full result (for
// Theorem 1 checking and constraint (3) accounting) when this report came
// from EngineModel.
func (r *Report) ModelDetail() (*ModelResult, bool) { return r.model, r.model != nil }

// SimDetail returns the asynchronous simulator's full result when this
// report came from EngineSim.
func (r *Report) SimDetail() (*SimResult, bool) { return r.sim, r.sim != nil }

// SimSyncDetail returns the barrier-synchronous simulator's full result
// (idle and compute time per worker) when this report came from
// EngineSimSync.
func (r *Report) SimSyncDetail() (*SimSyncResult, bool) { return r.simSync, r.simSync != nil }

// ConcurrentDetail returns the goroutine runtime's full result when this
// report came from EngineShared or EngineMessage.
func (r *Report) ConcurrentDetail() (*ConcurrentResult, bool) {
	return r.concurrent, r.concurrent != nil
}

// DistDetail returns the TCP engine's full result when this report came
// from EngineDist: the topology that ran, probe-round accounting, and the
// per-link byte counters (DistResult.LinkBytes[i][j] is the data-plane
// wire bytes shipped from worker i to worker j — through the coordinator's
// relay on "star", directly over the worker-to-worker link on "mesh").
func (r *Report) DistDetail() (*DistResult, bool) { return r.dist, r.dist != nil }
