package repro

// Live observation of a running Solve. A server streaming results back to a
// client (internal/server) wants to report "how far along is this job"
// while the engine is still iterating; Progress is the minimal
// concurrency-safe window the engines can afford to maintain on their hot
// paths — a single atomic counter of completed relaxation phases.

import "sync/atomic"

// Progress is a live, concurrency-safe view of a running Solve. Attach one
// with WithProgress and read it from any goroutine while the solve runs:
//
//	p := new(repro.Progress)
//	go func() { res, err = repro.Solve(spec, repro.WithProgress(p)) }()
//	for { fmt.Println(p.Updates()); ... }
//
// The engines bump the counter once per completed updating phase (model:
// per global iteration), so the cost of observation is one atomic add on a
// path that already does O(block) floating-point work. A Progress may be
// reused across sequential Solves (the counter keeps growing) but must not
// be shared by concurrent ones if per-solve counts matter.
type Progress struct {
	updates atomic.Int64
}

// Updates returns the number of updating phases completed so far.
func (p *Progress) Updates() int64 {
	if p == nil {
		return 0
	}
	return p.updates.Load()
}

// counter exposes the raw atomic for the engine configs; nil-safe.
func (p *Progress) counter() *atomic.Int64 {
	if p == nil {
		return nil
	}
	return &p.updates
}
