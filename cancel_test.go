package repro_test

// Tests of solve cancellation (WithContext) and live progress observation
// (WithProgress): a cancelled solve must return the context's error
// promptly instead of burning through its whole budget, and an attached
// Progress must see phases complete while the solve runs.

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro"
)

// cancellableEngines are the engines that honour Spec.Ctx mid-run.
func cancellableEngines() []repro.Engine {
	return []repro.Engine{
		repro.EngineModel, repro.EngineSim, repro.EngineSimSync,
		repro.EngineShared, repro.EngineMessage,
	}
}

// TestWithContextCancelStopsSolve starts an effectively unbounded solve
// (tolerance too tight to reach quickly, huge budgets) and cancels it after
// a few milliseconds; every cancellable engine must return promptly with
// the context error.
func TestWithContextCancelStopsSolve(t *testing.T) {
	spec, _ := lassoSpec(t)
	for _, engine := range cancellableEngines() {
		engine := engine
		t.Run(engine.Name(), func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithCancel(context.Background())
			time.AfterFunc(5*time.Millisecond, cancel)
			start := time.Now()
			res, err := repro.Solve(spec,
				repro.WithEngine(engine),
				repro.WithContext(ctx),
				repro.WithDelay(repro.BoundedRandomDelay{B: 8, Seed: 2}),
				repro.WithWorkers(4),
				repro.WithSeed(3),
				repro.WithTol(0), // stopping disabled: the run can only be cancelled
				repro.WithMaxIter(1<<30),
				repro.WithMaxUpdates(1<<30),
			)
			elapsed := time.Since(start)
			if err == nil {
				t.Fatalf("cancelled solve returned a report (converged=%v)", res.Converged)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if elapsed > 5*time.Second {
				t.Fatalf("cancel took %v to take effect", elapsed)
			}
		})
	}
}

// TestWithContextDeadlinePreCancelled: a context that is already done must
// fail fast without running the engine at all.
func TestWithContextDeadlinePreCancelled(t *testing.T) {
	spec, _ := lassoSpec(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := repro.Solve(spec, repro.WithContext(ctx), repro.WithTol(1e-9))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestWithContextUncancelledRunsUnchanged: attaching a context that never
// fires must not perturb the deterministic engines' trajectories.
func TestWithContextUncancelledRunsUnchanged(t *testing.T) {
	spec, _ := lassoSpec(t)
	for _, engine := range []repro.Engine{repro.EngineModel, repro.EngineSim, repro.EngineSimSync} {
		engine := engine
		t.Run(engine.Name(), func(t *testing.T) {
			opts := func(extra ...repro.Option) []repro.Option {
				return append([]repro.Option{
					repro.WithEngine(engine),
					repro.WithDelay(repro.BoundedRandomDelay{B: 8, Seed: 2}),
					repro.WithWorkers(4),
					repro.WithSeed(3),
					repro.WithTol(1e-9),
					repro.WithMaxIter(2000000),
					repro.WithMaxUpdates(2000000),
				}, extra...)
			}
			plain, err := repro.Solve(spec, opts()...)
			if err != nil {
				t.Fatal(err)
			}
			withCtx, err := repro.Solve(spec, opts(repro.WithContext(context.Background()))...)
			if err != nil {
				t.Fatal(err)
			}
			if withCtx.Iterations != plain.Iterations || withCtx.Updates != plain.Updates {
				t.Fatalf("context changed the trajectory: iters %d/%d updates %d/%d",
					withCtx.Iterations, plain.Iterations, withCtx.Updates, plain.Updates)
			}
			for i := range plain.X {
				if withCtx.X[i] != plain.X[i] {
					t.Fatalf("component %d differs with context: %v != %v", i, withCtx.X[i], plain.X[i])
				}
			}
		})
	}
}

// TestWithProgressObservesUpdates runs a bounded solve with a Progress
// attached and checks the final counter matches the report's update count
// (and for a concurrent engine, that the counter is live, not just final).
func TestWithProgressObservesUpdates(t *testing.T) {
	spec, _ := lassoSpec(t)
	for _, engine := range []repro.Engine{repro.EngineModel, repro.EngineSim, repro.EngineShared} {
		engine := engine
		t.Run(engine.Name(), func(t *testing.T) {
			p := new(repro.Progress)
			res, err := repro.Solve(spec,
				repro.WithEngine(engine),
				repro.WithProgress(p),
				repro.WithDelay(repro.BoundedRandomDelay{B: 8, Seed: 2}),
				repro.WithWorkers(4),
				repro.WithSeed(3),
				repro.WithTol(1e-9),
				repro.WithMaxIter(2000000),
				repro.WithMaxUpdates(2000000),
			)
			if err != nil {
				t.Fatal(err)
			}
			want := int64(res.Updates)
			if engine == repro.EngineModel {
				want = int64(res.Iterations)
			}
			if got := p.Updates(); got != want {
				t.Fatalf("Progress.Updates() = %d, want %d", got, want)
			}
		})
	}
}
