package repro_test

// Facade tests: exercise the public API exactly as a downstream user would,
// covering each engine and workload end to end.

import (
	"math"
	"strings"
	"testing"

	"repro"
)

func TestPublicAPILassoEndToEnd(t *testing.T) {
	reg, err := repro.NewRegression(repro.RegressionConfig{
		N: 16, Coupling: 0.3, Sparsity: 0.5, Noise: 0.01, Reg: 0.1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := reg.Smooth()
	gamma := repro.MaxStep(f)
	op := repro.NewProxGradBF(f, repro.L1{Lambda: 0.02}, gamma)

	ystar, ok := repro.FixedPoint(op, make([]float64, 16), 1e-13, 400000)
	if !ok {
		t.Fatal("reference failed")
	}
	res, err := repro.RunModel(repro.ModelConfig{
		Op:      op,
		Delay:   repro.BoundedRandomDelay{B: 8, Seed: 2},
		Theta:   0.5,
		XStar:   ystar,
		Tol:     1e-10,
		MaxIter: 400000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	rep, err := repro.CheckTheorem1(res, repro.TheoreticalRho(f, gamma))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Errorf("Theorem 1 violated: %+v", rep)
	}
}

func TestPublicAPISimulatorAndTrace(t *testing.T) {
	a := repro.DenseFromRows([][]float64{{0, 0.5}, {0.5, 0}})
	op := repro.NewLinear(a, []float64{1, 1})
	lg := &repro.TraceLog{}
	res, err := repro.RunSim(repro.SimConfig{
		Op: op, Workers: 2, X0: []float64{10, 10}, XStar: []float64{2, 2},
		MaxUpdates: 9,
		Cost:       repro.HeterogeneousCost([]float64{1, 1.6}),
		Latency:    repro.FixedLatency(0.25),
		Flexible:   repro.UniformFlex(2),
		Seed:       1,
		Trace:      lg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates != 9 {
		t.Errorf("updates = %d", res.Updates)
	}
	out := repro.RenderGantt(lg, 76)
	if !strings.Contains(out, "~~>") {
		t.Error("flexible partial sends missing from trace")
	}
	var csv strings.Builder
	if err := repro.WriteTraceCSV(&csv, lg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "partial") {
		t.Error("CSV missing partial events")
	}
}

func TestPublicAPIGoroutineRuntime(t *testing.T) {
	f := repro.NewSeparable([]float64{1, 2, 3, 4}, []float64{1, -1, 2, -2})
	op := repro.NewGradOp(f, repro.MaxStep(f))
	res, err := repro.RunShared(repro.ConcurrentConfig{
		Op: op, Workers: 2, Tol: 1e-11, MaxUpdatesPerWorker: 1 << 18,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("shared run did not converge")
	}
	want := []float64{1, -1, 2, -2}
	for i := range want {
		if math.Abs(res.X[i]-want[i]) > 1e-8 {
			t.Errorf("X[%d] = %v, want %v", i, res.X[i], want[i])
		}
	}
}

func TestPublicAPIRoutingWorkload(t *testing.T) {
	g, err := repro.GridGraph(4, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	op, err := repro.NewBellmanFordOp(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := g.Dijkstra(0)
	res, err := repro.RunModel(repro.ModelConfig{
		Op:    op,
		Delay: repro.OutOfOrderDelay{W: 8, Seed: 4},
		X0:    op.InitialDistances(),
		XStar: want, Tol: 1e-12, MaxIter: 500000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || repro.DistInf(res.X, want) > 1e-12 {
		t.Error("routing did not reach Dijkstra distances")
	}
}

func TestPublicAPINetworkFlowWorkload(t *testing.T) {
	net, err := repro.FlowGrid(3, 3, 2, 0, 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	op := repro.NewFlowRelaxOp(net)
	p, ok := repro.FixedPoint(op, make([]float64, net.NumNodes), 1e-11, 100000)
	if !ok {
		t.Fatal("relaxation failed")
	}
	if rep := net.CheckKKT(p); rep.MaxImbalance > 1e-8 {
		t.Errorf("KKT imbalance %v", rep.MaxImbalance)
	}
}

func TestPublicAPIObstacleWorkload(t *testing.T) {
	p := repro.ObstacleMembrane(8)
	u, ok := repro.FixedPoint(p, p.Supersolution(), 1e-11, 500000)
	if !ok {
		t.Fatal("obstacle solve failed")
	}
	rep := p.CheckComplementarity(u)
	if rep.MinGap < -1e-9 || rep.WorstSlackProduct > 1e-6 {
		t.Errorf("complementarity violated: %+v", rep)
	}
}

func TestPublicAPIMacroAndEpochHelpers(t *testing.T) {
	tr := repro.NewMacroTracker(2)
	tr.Observe(1, []int{0}, 0)
	tr.Observe(2, []int{1}, 1)
	if tr.K() != 1 {
		t.Errorf("K = %d", tr.K())
	}
	et := repro.NewEpochTracker(1)
	et.Observe(1, 0)
	et.Observe(2, 0)
	if et.M() != 1 {
		t.Errorf("M = %d", et.M())
	}
	sc := repro.NewStopCriterion(1e-6, 1)
	if !sc.ObserveBoundary(1e-9) {
		t.Error("stop criterion should fire")
	}
}

func TestPublicAPIDelayHelpers(t *testing.T) {
	repb := repro.CheckDelayConditions(repro.SqrtGrowthDelay{}, 2, 1000)
	if !repb.AOK || !repb.BOK {
		t.Errorf("sqrt model should satisfy a) and b): %+v", repb)
	}
	ok, _, _, _ := repro.CheckChaoticBound(repro.BoundedRandomDelay{B: 4, Seed: 1}, 2, 500, 4)
	if !ok {
		t.Error("chaotic bound should hold")
	}
	series := repro.DelaySeries(repro.ConstantDelay{D: 3}, 0, 10)
	if len(series) != 10 {
		t.Errorf("series length %d", len(series))
	}
}

func TestPublicAPITableAndMetrics(t *testing.T) {
	tb := repro.NewTable("t", "a", "b")
	tb.AddRow(1, 2.5)
	if !strings.Contains(tb.String(), "2.5") {
		t.Error("table missing value")
	}
	if repro.Speedup(10, 5) != 2 {
		t.Error("speedup wrong")
	}
	if repro.Efficiency(2, 2) != 1 {
		t.Error("efficiency wrong")
	}
	rate := repro.FitContractionRate([]float64{1, 0.5, 0.25})
	if math.Abs(rate-0.5) > 1e-9 {
		t.Errorf("rate = %v", rate)
	}
}
