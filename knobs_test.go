package repro_test

import (
	"flag"
	"strings"
	"testing"
	"time"

	"repro"
)

// The knob table is the single source of truth for the tuning and fault
// knobs on every surface. These tests pin the table's internal consistency
// and the flag-side binding; the server-side binding is pinned in
// internal/server.

func TestKnobTableWellFormed(t *testing.T) {
	table := repro.KnobTable()
	if len(table) == 0 {
		t.Fatal("empty knob table")
	}
	flags := map[string]bool{}
	jsons := map[string]bool{}
	for _, k := range table {
		if k.Flag == "" || k.JSON == "" || k.Help == "" {
			t.Errorf("knob %+v: empty flag, json or help", k)
		}
		if k.Group != "tuning" && k.Group != "faults" && k.Group != "elastic" {
			t.Errorf("knob %s: unknown group %q", k.Flag, k.Group)
		}
		if flags[k.Flag] {
			t.Errorf("duplicate flag name %q", k.Flag)
		}
		if jsons[k.JSON] {
			t.Errorf("duplicate JSON field %q", k.JSON)
		}
		flags[k.Flag] = true
		jsons[k.JSON] = true
		// Every default must parse by the knob's own rule.
		if _, err := k.Option(k.Default); err != nil {
			t.Errorf("knob %s: default %q does not validate: %v", k.Flag, k.Default, err)
		}
		// Lookup by either name returns the same entry.
		if kf, ok := repro.KnobByFlag(k.Flag); !ok || kf.JSON != k.JSON {
			t.Errorf("KnobByFlag(%q) mismatch", k.Flag)
		}
		if kj, ok := repro.KnobByJSON(k.JSON); !ok || kj.Flag != k.Flag {
			t.Errorf("KnobByJSON(%q) mismatch", k.JSON)
		}
	}
	// The table must cover exactly the knobs the API groups expose.
	for _, want := range []string{"block-size", "intra-parallel", "gram-precompute",
		"drop", "reorder", "maxdelay",
		"heartbeat", "checkpoint", "rejoin-wait", "checkpoint-file"} {
		if !flags[want] {
			t.Errorf("knob table missing flag %q", want)
		}
	}
}

// RegisterKnobFlags must register exactly the table's flags (per group),
// with the table's defaults — the CLI surface cannot drift from the table.
func TestRegisterKnobFlagsMatchesTable(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	repro.RegisterKnobFlags(fs)
	for _, k := range repro.KnobTable() {
		f := fs.Lookup(k.Flag)
		if f == nil {
			t.Errorf("flag -%s not registered", k.Flag)
			continue
		}
		if f.DefValue != k.Default {
			t.Errorf("flag -%s default %q != table default %q", k.Flag, f.DefValue, k.Default)
		}
		if f.Usage != k.Help {
			t.Errorf("flag -%s help drifted from table", k.Flag)
		}
	}
	registered := 0
	fs.VisitAll(func(*flag.Flag) { registered++ })
	if want := len(repro.KnobTable()); registered != want {
		t.Errorf("registered %d flags, table has %d", registered, want)
	}

	// Group filtering registers only that group.
	ffs := flag.NewFlagSet("y", flag.ContinueOnError)
	repro.RegisterKnobFlags(ffs, "faults")
	if ffs.Lookup("drop") == nil || ffs.Lookup("block-size") != nil {
		t.Error("group filter did not restrict registration to the faults group")
	}
}

// Explicitly-set flags — and only those — become options; the resulting
// Spec carries exactly the set values on the fields the table routes to.
func TestKnobSetOptionsAndValues(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	ks := repro.RegisterKnobFlags(fs)
	if err := fs.Parse([]string{"-block-size", "64", "-intra-parallel", "4",
		"-gram-precompute=false", "-drop", "0.25", "-maxdelay", "10ms"}); err != nil {
		t.Fatal(err)
	}
	spec, err := ks.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Tuning.BlockSize != 64 || spec.Tuning.IntraParallelism != 4 {
		t.Errorf("tuning = %+v, want BlockSize 64 IntraParallelism 4", spec.Tuning)
	}
	if spec.Tuning.GramPrecomputed() {
		t.Error("gram-precompute=false not applied")
	}
	if spec.DropProb != 0.25 || spec.MaxLinkDelay != 10*time.Millisecond {
		t.Errorf("faults = %+v, want drop 0.25 maxdelay 10ms", spec.Faults())
	}
	if spec.ReorderProb != 0 {
		t.Errorf("unset -reorder leaked %v into the spec", spec.ReorderProb)
	}
	vals, err := ks.Values()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"block_size": "64", "intra_parallel": "4",
		"gram_precompute": "false", "drop_prob": "0.25", "max_link_delay": "10ms"}
	if len(vals) != len(want) {
		t.Errorf("Values() = %v, want %v", vals, want)
	}
	for k, v := range want {
		if vals[k] != v {
			t.Errorf("Values()[%s] = %q, want %q", k, vals[k], v)
		}
	}

	// Invalid values surface as errors, not silent defaults.
	bad := flag.NewFlagSet("bad", flag.ContinueOnError)
	bks := repro.RegisterKnobFlags(bad)
	if err := bad.Parse([]string{"-drop", "1.5"}); err != nil {
		t.Fatal(err)
	}
	if _, err := bks.Options(); err == nil || !strings.Contains(err.Error(), "[0,1]") {
		t.Errorf("out-of-range drop accepted: %v", err)
	}
}

// JSONValue and KnobValueFromJSON are inverse: the wire form round-trips
// back to the flag form for every kind.
func TestKnobJSONRoundTrip(t *testing.T) {
	cases := map[string]string{
		"block-size": "128", "intra-parallel": "8", "gram-precompute": "false",
		"drop": "0.5", "reorder": "0.125", "maxdelay": "250ms",
		"heartbeat": "20ms", "checkpoint-file": "/tmp/ckpt.bin",
	}
	for flagName, val := range cases {
		k, ok := repro.KnobByFlag(flagName)
		if !ok {
			t.Fatalf("no knob %q", flagName)
		}
		raw, err := k.JSONValue(val)
		if err != nil {
			t.Fatalf("%s: JSONValue(%q): %v", flagName, val, err)
		}
		back, err := repro.KnobValueFromJSON(k, raw)
		if err != nil {
			t.Fatalf("%s: KnobValueFromJSON(%s): %v", flagName, raw, err)
		}
		if back != val {
			t.Errorf("%s: %q -> %s -> %q did not round-trip", flagName, val, raw, back)
		}
	}
	// Durations must be quoted on the wire; a bare literal is rejected.
	k, _ := repro.KnobByFlag("maxdelay")
	if _, err := repro.KnobValueFromJSON(k, []byte("10")); err == nil {
		t.Error("bare-number duration accepted from JSON")
	}
	// String knobs too.
	k, _ = repro.KnobByFlag("checkpoint-file")
	if _, err := repro.KnobValueFromJSON(k, []byte("10")); err == nil {
		t.Error("bare-literal string knob accepted from JSON")
	}
}

// WithElastic and the elastic knob-table entries must write the same
// fields, and Elastic() must read them back as one unit.
func TestWithElasticMatchesKnobTable(t *testing.T) {
	e := repro.Elastic{
		HeartbeatEvery:  20 * time.Millisecond,
		CheckpointEvery: 80 * time.Millisecond,
		MaxRejoinWait:   2 * time.Second,
		CheckpointPath:  "/tmp/ckpt.bin",
	}
	grouped := repro.NewSpec(nil, repro.WithElastic(e))
	if grouped.Elastic() != e {
		t.Errorf("Elastic() read back %+v, want %+v", grouped.Elastic(), e)
	}
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	ks := repro.RegisterKnobFlags(fs, "elastic")
	if err := fs.Parse([]string{"-heartbeat", "20ms", "-checkpoint", "80ms",
		"-rejoin-wait", "2s", "-checkpoint-file", "/tmp/ckpt.bin"}); err != nil {
		t.Fatal(err)
	}
	viaTable, err := ks.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if viaTable.Elastic() != e {
		t.Errorf("knob table wrote %+v, want %+v", viaTable.Elastic(), e)
	}
}

// The deprecated per-fault options and the grouped WithFaults must write
// the same fields, and Faults() must read them back as one unit.
func TestWithFaultsMatchesDeprecatedShims(t *testing.T) {
	f := repro.Faults{DropProb: 0.1, ReorderProb: 0.2, MaxLinkDelay: 5 * time.Millisecond}
	grouped := repro.NewSpec(nil, repro.WithFaults(f))
	shimmed := repro.NewSpec(nil,
		repro.WithDropProb(0.1), repro.WithReorderProb(0.2),
		repro.WithMaxLinkDelay(5*time.Millisecond))
	if grouped.Faults() != shimmed.Faults() {
		t.Errorf("grouped %+v != shimmed %+v", grouped.Faults(), shimmed.Faults())
	}
	if grouped.Faults() != f {
		t.Errorf("Faults() read back %+v, want %+v", grouped.Faults(), f)
	}
}
