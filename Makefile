# Mirrors the CI jobs (.github/workflows/ci.yml) so contributors run
# exactly what CI runs. `make check` is the full pre-push gate.

GO ?= go

.PHONY: all build test race smoke-tuned smoke-examples smoke-dist serve-smoke chaos-smoke bench bench-json bench-compare lint reprolint reprolint-json vulncheck fmt check clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

# Full race coverage: every package under the race detector. (The
# goroutine and TCP engines, the parallel experiment harness, the HTTP job
# server and the operator lane fan-out are where races would live, but the
# whole tree is cheap enough to cover wholesale.)
race:
	$(GO) test -race ./...

# Tuned smoke: the cache-blocked + multi-goroutine kernels exercised end to
# end with the knobs on and GOMAXPROCS=4 — the combination a
# single-threaded box never covers incidentally. The gram-precompute=false
# run exercises the lean LeastSquares gradient form.
smoke-tuned:
	GOMAXPROCS=4 $(GO) run ./cmd/asyncsolve -scenario lasso -n 320 -block-size 64 -intra-parallel 2 >/dev/null
	GOMAXPROCS=4 $(GO) run ./cmd/asyncsolve -scenario ridge -n 320 -intra-parallel 2 -gram-precompute=false >/dev/null
	GOMAXPROCS=4 $(GO) test -race -run 'Tuning|Knob|Tiled|Lean' . ./internal/operators/ ./internal/vec/ ./internal/server/

# Every example program must actually run, not just compile (CI smoke-runs
# them on every push).
smoke-examples:
	@for d in examples/*/; do \
		echo "== $$d"; \
		$(GO) run "./$$d" >/dev/null || exit 1; \
	done

# Both dist data planes solve a scenario end to end over real TCP (what
# the CI dist smoke step runs).
smoke-dist:
	$(GO) run ./cmd/asyncsolve -scenario lasso -engine dist -workers 4 -topology star >/dev/null
	$(GO) run ./cmd/asyncsolve -scenario lasso -engine dist -workers 4 -topology mesh >/dev/null
	$(GO) run ./cmd/asyncsolve -scenario routing -engine dist -workers 4 -topology mesh -delta 1e-9 >/dev/null

# Serve smoke: stand up the HTTP job server with admission capacity (queue
# depth + workers) deliberately below the offered closed-loop concurrency,
# drive it for 2s with a three-scenario mix, and require BOTH outcomes the
# design promises: every accepted job converged (load's exit code) and at
# least one job was 503-rejected, i.e. admission control actually engaged.
# Finishes with a SIGTERM drain, which must exit cleanly.
serve-smoke:
	$(GO) build -o asyncsolve ./cmd/asyncsolve
	@./asyncsolve serve -addr 127.0.0.1:18080 -queue 1 -concurrency 1 -quiet & \
	pid=$$!; \
	trap 'kill "$$pid" 2>/dev/null' EXIT; \
	sleep 1; \
	out=$$(./asyncsolve load -addr http://127.0.0.1:18080 -duration 2s \
		-concurrency 8 -scenarios lasso,ridge,routing); \
	status=$$?; \
	echo "$$out"; \
	if [ "$$status" -ne 0 ]; then \
		echo "serve-smoke: load failed (an accepted job did not converge)" >&2; \
		exit "$$status"; \
	fi; \
	echo "$$out" | grep -q 'rejected=[1-9]' || { \
		echo "serve-smoke: no 503 rejection observed (queue never filled)" >&2; \
		exit 1; }; \
	kill -TERM "$$pid"; \
	wait "$$pid"; \
	trap - EXIT; \
	echo "serve-smoke: ok"

# Chaos smoke: the elastic dist engine survives worker churn on both data
# planes. Each run solves with 8 workers under drop+reorder+delay faults
# while 2 workers are killed mid-solve and restarted; `asyncsolve chaos`
# exits non-zero unless the run converges and both rejoins are observed.
chaos-smoke:
	$(GO) build -o asyncsolve ./cmd/asyncsolve
	./asyncsolve chaos -scenario lasso -workers 8 -kills 2 -topology star \
		-drop 0.05 -reorder 0.05 -maxdelay 200us >/dev/null
	./asyncsolve chaos -scenario lasso -workers 8 -kills 2 -topology mesh \
		-drop 0.05 -reorder 0.05 -maxdelay 200us >/dev/null
	@echo "chaos-smoke: ok"

# Benchmark smoke: every benchmark compiles and runs once, with allocation
# reporting (what the CI benchmark job runs before capturing BENCH json).
bench:
	$(GO) test -run '^$$' -bench=. -benchtime=1x -benchmem ./...

# Full machine-readable capture (BENCH_<rev>.json in the repo root).
bench-json:
	$(GO) run ./cmd/asyncsolve bench

# Gate the block-evaluation fast path, the serving layer AND the solve-rate
# trajectory: re-measure the BlockEval pairs, the ServeSustained /
# ScenarioSolveLasso pair, the scenario solves and both dist deployments,
# and fail if any speedup multiple, the serving-efficiency ratio, or any
# normalized solve rate regressed against the committed baseline capture.
# Ratios within one capture, not raw ns/op, are compared, so the gate is
# machine-independent.
bench-compare:
	$(GO) run ./cmd/asyncsolve bench \
		-match '^(BlockEval|ServeSustained$$|ScenarioSolveLasso|Dist(Star|Mesh)Workers$$)' -experiments=false \
		-benchtime 250ms -rev current -out BENCH_current.json
	$(GO) run ./cmd/asyncsolve bench-compare \
		-baseline BENCH_baseline.json -current BENCH_current.json
	rm -f BENCH_current.json

lint: reprolint
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi
	$(GO) vet ./...

# The repo's own static-analysis suite (see internal/analysis and the
# "Static analysis" section of doc.go): hotpath, vecorder, ctxloop,
# knobdrift, nodeprecated, plus the CFG-backed determinism, goroutinelife,
# slotbudget and lockdiscipline. Any diagnostic fails the build. Runs
# through `go vet -vettool` so unchanged packages hit the vet action
# cache. cmd/... and examples/... are named explicitly to match CI.
reprolint:
	$(GO) build -o bin/reprolint ./cmd/reprolint
	$(GO) vet -vettool=bin/reprolint ./... ./cmd/... ./examples/...

# Machine-readable findings (what CI uploads as the reprolint-json
# artifact); exit status is always 0, the gating happens in `reprolint`.
reprolint-json:
	$(GO) build -o bin/reprolint ./cmd/reprolint
	./bin/reprolint -json ./... ./cmd/... ./examples/...

# Known-vulnerability scan, blocking against the reviewed allowlist
# (.govulncheck/allowlist.json) exactly as CI runs it. Skips gracefully
# when govulncheck or jq is not installed (CI always has both).
vulncheck:
	@command -v govulncheck >/dev/null 2>&1 || { echo "vulncheck: govulncheck not installed; skipping"; exit 0; }; \
	command -v jq >/dev/null 2>&1 || { echo "vulncheck: jq not installed; skipping"; exit 0; }; \
	govulncheck -json ./... > vuln.json; \
	found=$$(jq -r 'select(.finding != null) | select(.finding.trace[0].function != null) | .finding.osv' vuln.json | sort -u); \
	allowed=$$(jq -r '.allow[].id' .govulncheck/allowlist.json | sort -u); \
	blocked=""; \
	for id in $$found; do \
		printf '%s\n' "$$allowed" | grep -qxF "$$id" || blocked="$$blocked$$id\n"; \
	done; \
	blocked=$$(printf "$$blocked"); \
	rm -f vuln.json; \
	if [ -n "$$blocked" ]; then \
		echo "vulncheck: reachable vulnerabilities not in .govulncheck/allowlist.json:" >&2; \
		echo "$$blocked" >&2; \
		exit 1; \
	fi; \
	echo "vulncheck: clean"

fmt:
	gofmt -w .

check: lint vulncheck build test race smoke-tuned smoke-examples smoke-dist serve-smoke chaos-smoke bench bench-compare

# Committed captures (the baseline and the recorded performance trajectory)
# stay; every untracked BENCH json (bench-json / bench-compare output) goes.
clean:
	rm -f asyncsolve
	rm -rf bin
	@for f in BENCH_*.json; do \
		[ -e "$$f" ] || continue; \
		git ls-files --error-unmatch "$$f" >/dev/null 2>&1 || rm -f "$$f"; \
	done
