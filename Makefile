# Mirrors the CI jobs (.github/workflows/ci.yml) so contributors run
# exactly what CI runs. `make check` is the full pre-push gate.

GO ?= go

.PHONY: all build test race smoke-examples bench bench-json lint fmt check clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race job covers the goroutine and TCP engines (both dist
# topologies), the parallel experiment harness and the facade that drives
# them.
race:
	$(GO) test -race . ./internal/runtime/... ./internal/dist/... ./internal/experiments/...

# Every example program must actually run, not just compile (CI smoke-runs
# them on every push).
smoke-examples:
	@for d in examples/*/; do \
		echo "== $$d"; \
		$(GO) run "./$$d" >/dev/null || exit 1; \
	done

# Both dist data planes solve a scenario end to end over real TCP (what
# the CI dist smoke step runs).
smoke-dist:
	$(GO) run ./cmd/asyncsolve -scenario lasso -engine dist -workers 4 -topology star >/dev/null
	$(GO) run ./cmd/asyncsolve -scenario lasso -engine dist -workers 4 -topology mesh >/dev/null
	$(GO) run ./cmd/asyncsolve -scenario routing -engine dist -workers 4 -topology mesh -delta 1e-9 >/dev/null

# Benchmark smoke: every benchmark compiles and runs once, with allocation
# reporting (what the CI benchmark job runs before capturing BENCH json).
bench:
	$(GO) test -run '^$$' -bench=. -benchtime=1x -benchmem ./...

# Full machine-readable capture (BENCH_<rev>.json in the repo root).
bench-json:
	$(GO) run ./cmd/asyncsolve bench

# Gate the block-evaluation fast path: re-measure the BlockEval pairs and
# fail if any block-vs-per-component speedup multiple regressed more than
# 20% against the committed baseline capture. Multiples, not raw ns/op, are
# compared, so the gate is machine-independent.
bench-compare:
	$(GO) run ./cmd/asyncsolve bench -match '^BlockEval' -experiments=false \
		-benchtime 250ms -rev current -out BENCH_current.json
	$(GO) run ./cmd/asyncsolve bench-compare \
		-baseline BENCH_baseline.json -current BENCH_current.json
	rm -f BENCH_current.json

lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi
	$(GO) vet ./...

fmt:
	gofmt -w .

check: lint build test race smoke-examples smoke-dist bench bench-compare

# Committed captures (the baseline and the recorded performance trajectory)
# stay; every untracked BENCH json (bench-json / bench-compare output) goes.
clean:
	rm -f asyncsolve
	@for f in BENCH_*.json; do \
		[ -e "$$f" ] || continue; \
		git ls-files --error-unmatch "$$f" >/dev/null 2>&1 || rm -f "$$f"; \
	done
