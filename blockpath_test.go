package repro_test

// Block-path equivalence: the deterministic engines must produce
// bit-identical Report trajectories whether coupled operators are evaluated
// through the whole-block fast path (BlockScratchOperator) or the
// per-component fallback. The fallback is forced by wrapping the operator in
// a type that forwards the scratch fast path but hides the block interface —
// so the ONLY difference between the two runs is EvalBlock's dispatch.

import (
	"reflect"
	"testing"

	"repro"
	"repro/internal/operators"
)

// noBlock forwards the componentwise and scratch fast paths of its inner
// operator but deliberately does not implement BlockScratchOperator, forcing
// operators.EvalBlock onto the per-component fallback.
type noBlock struct{ inner repro.Operator }

func (w noBlock) Dim() int                             { return w.inner.Dim() }
func (w noBlock) Component(i int, x []float64) float64 { return w.inner.Component(i, x) }
func (w noBlock) Name() string                         { return w.inner.Name() }

func (w noBlock) ComponentScratch(scr *operators.Scratch, i int, x []float64) float64 {
	if so, ok := w.inner.(operators.ScratchOperator); ok {
		return so.ComponentScratch(scr, i, x)
	}
	return w.inner.Component(i, x)
}

func (w noBlock) ApplyScratch(scr *operators.Scratch, dst, x []float64) {
	if so, ok := w.inner.(operators.ScratchOperator); ok {
		so.ApplyScratch(scr, dst, x)
		return
	}
	operators.Apply(w.inner, dst, x)
}

// Apply keeps the Residual/FullApplier fast path identical in both runs.
func (w noBlock) Apply(dst, x []float64) { operators.Apply(w.inner, dst, x) }

func blockPathOps(t *testing.T) map[string]repro.Operator {
	t.Helper()
	reg, err := repro.NewRegression(repro.RegressionConfig{
		N: 48, Coupling: 0.3, Sparsity: 0.5, Noise: 0.01, Reg: 0.1, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := reg.Smooth()
	return map[string]repro.Operator{
		"proxGradBF-lasso": repro.NewProxGradBF(f, repro.L1{Lambda: 0.02}, repro.MaxStep(f)),
		"innerIterated":    repro.NewInnerIterated(f, repro.L1{Lambda: 0.02}, repro.MaxStep(f), 3),
		"gradOp-ridge":     repro.NewGradOp(f, repro.MaxStep(f)),
	}
}

// trajectory extracts every deterministic outcome field of a Report.
func trajectory(r *repro.Report) map[string]interface{} {
	return map[string]interface{}{
		"X":                r.X,
		"Converged":        r.Converged,
		"Iterations":       r.Iterations,
		"Updates":          r.Updates,
		"FinalResidual":    r.FinalResidual,
		"FinalError":       r.FinalError,
		"Errors":           r.Errors,
		"ErrorTrace":       r.ErrorTrace,
		"Boundaries":       r.Boundaries,
		"Epochs":           r.Epochs,
		"UpdatesPerWorker": r.UpdatesPerWorker,
		"MessagesSent":     r.MessagesSent,
		"MessagesDropped":  r.MessagesDropped,
		"Time":             r.Time,
	}
}

func TestBlockPathBitIdenticalOnDeterministicEngines(t *testing.T) {
	engines := []struct {
		name string
		opts []repro.Option
	}{
		{"model", []repro.Option{
			repro.WithEngine(repro.EngineModel),
			repro.WithDelay(repro.BoundedRandomDelay{B: 8, Seed: 3}),
			repro.WithTol(1e-9), repro.WithMaxIter(200000),
		}},
		{"sim", []repro.Option{
			repro.WithEngine(repro.EngineSim),
			repro.WithWorkers(6),
			repro.WithSeed(4),
			repro.WithMaxUpdates(3000),
		}},
		{"sim-flexible-dropping", []repro.Option{
			repro.WithEngine(repro.EngineSim),
			repro.WithWorkers(6),
			repro.WithSeed(5),
			repro.WithDropProb(0.1),
			repro.WithFlexible(repro.FlexSchedule{Fracs: []float64{0.5}}),
			repro.WithMaxUpdates(3000),
		}},
		{"simsync", []repro.Option{
			repro.WithEngine(repro.EngineSimSync),
			repro.WithWorkers(6),
			repro.WithMaxUpdates(3000),
		}},
	}
	for name, op := range blockPathOps(t) {
		for _, eng := range engines {
			block, err := repro.Solve(repro.NewSpec(op, eng.opts...))
			if err != nil {
				t.Fatalf("%s/%s block run: %v", name, eng.name, err)
			}
			fallback, err := repro.Solve(repro.NewSpec(noBlock{op}, eng.opts...))
			if err != nil {
				t.Fatalf("%s/%s fallback run: %v", name, eng.name, err)
			}
			bt, ft := trajectory(block), trajectory(fallback)
			for field, bv := range bt {
				if !reflect.DeepEqual(bv, ft[field]) {
					t.Errorf("%s/%s: %s differs between block path and per-component fallback:\nblock:    %v\nfallback: %v",
						name, eng.name, field, bv, ft[field])
				}
			}
		}
	}
}
