// Package repro is a Go implementation of parallel and distributed
// asynchronous iterative algorithms with unbounded delays, possible
// out-of-order messages, and flexible communication, for convex
// optimization and machine learning — a reproduction of D. El-Baz, "On
// Parallel or Distributed Asynchronous Iterations with Unbounded Delays and
// Possible Out of Order Messages or Flexible Communication for Convex
// Optimization Problems and Machine Learning" (IPDPS Workshops 2022).
//
// The package is a facade over the internal engine and substrate packages;
// it exposes everything a user needs to
//
//   - define fixed-point operators (affine contractions, gradient and
//     proximal-gradient operators for composite problems min f+g, network
//     flow dual relaxations, obstacle problems, Bellman–Ford routing),
//   - run them under three execution models: the mathematical model of the
//     paper's Definitions 1 and 3 (explicit steering sets S_j and label
//     functions l_i(j)), a deterministic discrete-event simulation of
//     heterogeneous workers and lossy/reordering links, and real goroutine
//     concurrency over shared-memory or message-passing transports,
//   - track macro-iteration sequences (Definition 2), epoch sequences
//     (Mishchenko et al.), and verify the paper's Theorem 1 convergence
//     bound (5) against measured errors.
//
// Quick start (asynchronous proximal-gradient for lasso):
//
//	reg, _ := repro.NewRegression(repro.RegressionConfig{N: 32, Sparsity: 0.5, Reg: 0.1, Seed: 1})
//	f := reg.Smooth()
//	op := repro.NewProxGradBF(f, repro.L1{Lambda: 0.05}, repro.MaxStep(f))
//	res, _ := repro.RunModel(repro.ModelConfig{Op: op, Delay: repro.BoundedRandomDelay{B: 8, Seed: 2}, Tol: 1e-9})
//
// See the examples/ directory for complete programs and EXPERIMENTS.md for
// the reproduction of the paper's figures and claims.
package repro
