// Package repro is a Go implementation of parallel and distributed
// asynchronous iterative algorithms with unbounded delays, possible
// out-of-order messages, and flexible communication, for convex
// optimization and machine learning — a reproduction of D. El-Baz, "On
// Parallel or Distributed Asynchronous Iterations with Unbounded Delays and
// Possible Out of Order Messages or Flexible Communication for Convex
// Optimization Problems and Machine Learning" (IPDPS Workshops 2022).
//
// The paper's point is that ONE asynchronous iterative scheme (Definitions
// 1-3) subsumes many execution regimes. The API mirrors that: a single
// Solve entry point runs one Spec — problem, asynchrony dynamics,
// execution model, stopping rule — on any of five interchangeable engines:
//
//   - EngineModel   — the mathematical model of Definitions 1 and 3
//     (explicit steering sets S_j and delay labels l_i(j), deterministic);
//   - EngineSim     — a deterministic discrete-event simulation of
//     heterogeneous workers and lossy/reordering links (virtual time);
//   - EngineSimSync — the barrier-synchronous simulated baseline;
//   - EngineShared  — real goroutines over per-coordinate atomic shared
//     memory;
//   - EngineMessage — real goroutines over lossy buffered channels with
//     quiescence-based termination detection.
//
// Quick start (asynchronous proximal-gradient for lasso):
//
//	reg, _ := repro.NewRegression(repro.RegressionConfig{N: 32, Sparsity: 0.5, Reg: 0.1, Seed: 1})
//	f := reg.Smooth()
//	op := repro.NewProxGradBF(f, repro.L1{Lambda: 0.05}, repro.MaxStep(f))
//	res, _ := repro.Solve(repro.NewSpec(op),
//		repro.WithDelay(repro.BoundedRandomDelay{B: 8, Seed: 2}),
//		repro.WithTol(1e-9))
//	fmt.Println(res.Converged, res.Iterations, res.FinalResidual)
//
// The same spec runs unchanged on any other engine:
//
//	res, _ = repro.Solve(repro.NewSpec(op),
//		repro.WithEngine(repro.EngineSim),
//		repro.WithWorkers(8),
//		repro.WithCost(repro.HeterogeneousCost([]float64{1, 1, 1, 5})),
//		repro.WithTol(1e-9))
//
// Every engine returns the unified *Report (final iterate, convergence,
// update counts, residual and error series, macro-iteration and epoch
// sequences); engine-specific detail stays reachable through
// Report.ModelDetail, SimDetail, SimSyncDetail and ConcurrentDetail.
//
// Named workloads (lasso, ridge, logistic, netflow, obstacle, routing,
// multigrid) are registered in a scenario registry, so any workload x
// delay x steering x flexible x engine combination is composable by name:
//
//	inst, _ := repro.BuildScenario("lasso", 64, 1)
//	res, _ := repro.Solve(inst.Spec,
//		repro.WithEngine(repro.EngineSim),
//		repro.WithDelay(repro.BoundedRandomDelay{B: 8, Seed: 2}))
//	fmt.Println(inst.Describe(res.X))
//
// or from the CLI: asyncsolve -scenario lasso -engine sim -delay bounded:8.
// Custom workloads join the registry via RegisterScenario.
//
// Beyond solving, the package exposes the paper's analysis apparatus:
// macro-iteration sequences (Definition 2), epoch sequences (Mishchenko et
// al.), Theorem 1 bound checking (inequality (5)), delay-condition and
// constraint (3) validation, and execution tracing.
//
// The legacy entry points RunModel, RunSim, RunSimSync, RunShared and
// RunMessage remain as deprecated shims over Solve for one release; see
// the migration note at the top of repro.go.
//
// See the examples/ directory for complete programs and EXPERIMENTS.md for
// the reproduction of the paper's figures and claims.
package repro
