// Package repro is a Go implementation of parallel and distributed
// asynchronous iterative algorithms with unbounded delays, possible
// out-of-order messages, and flexible communication, for convex
// optimization and machine learning — a reproduction of D. El-Baz, "On
// Parallel or Distributed Asynchronous Iterations with Unbounded Delays and
// Possible Out of Order Messages or Flexible Communication for Convex
// Optimization Problems and Machine Learning" (IPDPS Workshops 2022).
//
// The paper's point is that ONE asynchronous iterative scheme (Definitions
// 1-3) subsumes many execution regimes. The API mirrors that: a single
// Solve entry point runs one Spec — problem, asynchrony dynamics,
// execution model, stopping rule — on any of six interchangeable engines:
//
//   - EngineModel   — the mathematical model of Definitions 1 and 3
//     (explicit steering sets S_j and delay labels l_i(j), deterministic);
//   - EngineSim     — a deterministic discrete-event simulation of
//     heterogeneous workers and lossy/reordering links (virtual time);
//   - EngineSimSync — the barrier-synchronous simulated baseline;
//   - EngineShared  — real goroutines over per-coordinate atomic shared
//     memory;
//   - EngineMessage — real goroutines over lossy buffered channels;
//   - EngineDist    — real multi-worker execution over TCP sockets with
//     per-link fault injection (drops, reordering, transit delay).
//
// # Distributed execution and termination
//
// EngineDist runs the paper's distributed-memory setting on a genuine
// network path: TCP workers each own a contiguous multi-component shard of
// the iterate and exchange length-prefixed binary shard frames
// (little-endian; see internal/dist wire.go for the exact format, and its
// protocol-v2 delta note for what changed since the star-only format),
// with fault injection per directed link — WithFaults(Faults{DropProb,
// ReorderProb, MaxLinkDelay}): iid loss, hold-backs so later blocks
// overtake, uniform transit jitter — so unbounded-delay and out-of-order message
// regimes are exercised end to end. On every directed link, frames
// overtaken by a later-sequenced frame from the same source are discarded
// at the delivery point (the label discipline for out-of-order messages):
// never written, never applied, counted MessagesReordered (or
// MessagesDuplicate for an equal sequence number) and drained from the
// termination protocol's in-flight count like a drop. A worker's final
// re-broadcast is reliable, i.e. exempt from drop and reorder injection.
// In-process Solve calls run everything over localhost; the asyncsolve
// dist-coordinator and dist-worker subcommands deploy the identical
// protocol as separate OS processes.
//
// # Topologies
//
// WithTopology selects the dist engine's data plane; the control plane —
// rendezvous, config distribution, probe-round termination, final shard
// collection — always runs through the coordinator:
//
//   - "star" (default): every shard frame is relayed by the coordinator,
//     which also applies the fault injection and the per-link sequence
//     filter. Simple, but the coordinator carries all p(p-1) logical links
//     and becomes the bandwidth bottleneck as workers scale.
//   - "mesh": after rendezvous the coordinator hands every worker the full
//     peer table and workers exchange shard frames over direct
//     worker-to-worker TCP connections. Fault injection and sequence
//     filtering move to the sending side of each mesh link, drawing the
//     same per-source RNG streams the star relay uses, so the two
//     topologies are behaviorally comparable under identical seeds. Each
//     link keeps a one-frame newest-wins outbox: a compute loop that
//     outruns the wire supersedes its own unsent frames (counted
//     MessagesReordered) instead of queueing stale values.
//
// WithDeltaThreshold adds flexible communication on the wire for either
// topology: a broadcast ships one [offset, len) frame covering the span of
// shard components that moved by more than the threshold since they were
// last shipped (sub-threshold creep accumulates, and one frame per
// broadcast means a broadcast is delivered or lost atomically — the
// sequence filter can never keep half of one), and ships nothing when
// nothing moved. On loss-free delivery peer staleness stays bounded by the
// threshold; a frame lost to injection or superseded before delivery
// leaves its components stale until the reliable final, which always
// carries the whole shard. Report.DistDetail exposes
// the topology that ran and the per-link byte matrix (LinkBytes[i][j] =
// data-plane wire bytes from worker i to worker j), alongside the
// transport accounting (messages sent/delivered/stale/dropped/reordered/
// duplicate, coordinator wire bytes, probe rounds). The benchsuite pair
// DistStarWorkers/DistMeshWorkers tracks the topologies' end-to-end solve
// rates at 8 workers in every BENCH capture.
//
// # Elasticity
//
// WithElastic(Elastic{HeartbeatEvery, CheckpointEvery, MaxRejoinWait,
// CheckpointPath}) switches the dist engine from "any worker loss fails the
// run" to elastic membership (wire protocol v3). Workers heartbeat the
// control link; a link silent past max(6×HeartbeatEvery, 200ms) is declared
// lost, and the coordinator re-shards the component space over the
// survivors mid-solve through a generation-fenced barrier: the membership
// generation is bumped, survivors pause and acknowledge with their current
// shards, the coordinator merges them into its warm-start iterate and
// re-issues the shard table (and, on mesh, the peer address table). Every
// block and status frame carries its generation, so frames from before a
// re-shard self-discard instead of corrupting the new assignment. Workers
// also stream periodic shard checkpoints to the coordinator — a restarted
// worker that rejoins (bounded exponential backoff with jitter, see
// Elastic.MaxRejoinWait) warm-starts from the merged checkpoint instead of
// X0, the delay-tolerant regime's arbitrarily-stale-contribution case.
// CheckpointPath additionally persists the merged iterate to disk so a
// restarted coordinator can warm-start the whole solve. A re-shard counts
// as a reactivation under the termination protocol below (the epoch bump
// invalidates any probe round in flight), so quiescence is never certified
// across a membership change; with zero churn the trajectory is
// bit-identical to a rigid run. Report.WorkersLost, WorkersRejoined and
// Resharding count the churn events; the asyncsolve chaos subcommand (and
// the chaos-smoke CI job) exercise kill/restart schedules end to end.
//
// All three concurrent engines (shared, message, dist) decide termination
// with one extracted two-phase double-collect quiescence protocol
// (internal/runtime, quiescence.go): stop is broadcast only after two
// identical observations of "every worker passive and nothing in flight",
// bracketing an optional re-certification — over TCP the two observations
// are Safra-style probe rounds. Workers publish reactivation before
// acknowledging the input that caused it, which closes the torn-read stop
// races polling supervisors are prone to; idle paths (passive workers, the
// message engine's supervisor) sleep on channels and are woken by events,
// never by polling.
//
// Quick start (asynchronous proximal-gradient for lasso):
//
//	reg, _ := repro.NewRegression(repro.RegressionConfig{N: 32, Sparsity: 0.5, Reg: 0.1, Seed: 1})
//	f := reg.Smooth()
//	op := repro.NewProxGradBF(f, repro.L1{Lambda: 0.05}, repro.MaxStep(f))
//	res, _ := repro.Solve(repro.NewSpec(op),
//		repro.WithDelay(repro.BoundedRandomDelay{B: 8, Seed: 2}),
//		repro.WithTol(1e-9))
//	fmt.Println(res.Converged, res.Iterations, res.FinalResidual)
//
// The same spec runs unchanged on any other engine:
//
//	res, _ = repro.Solve(repro.NewSpec(op),
//		repro.WithEngine(repro.EngineSim),
//		repro.WithWorkers(8),
//		repro.WithCost(repro.HeterogeneousCost([]float64{1, 1, 1, 5})),
//		repro.WithTol(1e-9))
//
// Every engine returns the unified *Report (final iterate, convergence,
// update counts, residual and error series, macro-iteration and epoch
// sequences); engine-specific detail stays reachable through
// Report.ModelDetail, SimDetail, SimSyncDetail and ConcurrentDetail.
//
// Named workloads (lasso, ridge, logistic, netflow, obstacle, routing,
// multigrid) are registered in a scenario registry, so any workload x
// delay x steering x flexible x engine combination is composable by name:
//
//	inst, _ := repro.BuildScenario("lasso", 64, 1)
//	res, _ := repro.Solve(inst.Spec,
//		repro.WithEngine(repro.EngineSim),
//		repro.WithDelay(repro.BoundedRandomDelay{B: 8, Seed: 2}))
//	fmt.Println(inst.Describe(res.X))
//
// or from the CLI: asyncsolve -scenario lasso -engine sim -delay bounded:8.
// Custom workloads join the registry via RegisterScenario.
//
// # Serving
//
// The internal/server package (CLI: asyncsolve serve) exposes the scenario
// x engine matrix as a multi-tenant HTTP job service. POST /v1/solve takes
// one JSON job — scenario, n, seed, engine, delay, tolerance and the
// flexible-communication knobs, mirroring the CLI flags — and streams
// NDJSON events: accepted, started, periodic progress (live update counts
// via WithProgress), then exactly one terminal event carrying the full
// Report verbatim. Report is JSON-round-trippable for exactly this use;
// non-finite values (routing's Bellman-Ford starts at +Inf) encode as
// "Infinity"/"-Infinity"/"NaN" strings. A bounded job queue provides
// admission control — a full queue answers 503 with a Retry-After hint
// instead of queueing without bound — and every job runs under a
// per-request deadline delivered to the engines as context cancellation
// (WithContext), so an abandoned or overlong request frees its worker.
// Solves reuse Scratch buffers from a pool keyed by problem signature
// (scenario, engine, n, workers), safe because scratch reuse is
// bit-identical by contract. Every in-process engine is served; only
// EngineDist is refused (it spans OS processes and cannot be cancelled
// mid-run). GET /v1/scenarios lists the registry, GET /healthz reports
// queue/worker/pool state, and SIGINT/SIGTERM drains gracefully: running
// and queued jobs finish their streams, new jobs get 503.
//
// asyncsolve load drives a running server (closed- or open-loop, mixed
// scenario round-robin) and reports sustained solves/sec with a latency
// histogram; make serve-smoke stands the pair up with admission capacity
// below the offered load and requires both that every accepted job
// converges and that at least one job is 503-rejected. The benchsuite's
// ServeSustained case records served throughput in every BENCH capture,
// and bench-compare gates the ServeSustained/ScenarioSolveLasso ratio
// within one capture — serving efficiency, machine-independent like the
// BlockEval multiples.
//
// Beyond solving, the package exposes the paper's analysis apparatus:
// macro-iteration sequences (Definition 2), epoch sequences (Mishchenko et
// al.), Theorem 1 bound checking (inequality (5)), delay-condition and
// constraint (3) validation, and execution tracing.
//
// # Performance
//
// The engine hot paths are allocation-free in steady state: the vec
// kernels have explicit ...Into variants, operators whose evaluation needs
// temporaries (ProxGradBF, InnerIterated) expose a scratch fast path
// (NewOperatorScratch, EvalComponent, ApplyOperator) that every engine
// threads one per-worker scratch through, the discrete-event simulator
// pools its events and messages, and the message-passing transport pools
// its payload buffers.
//
// On top of the scratch contract sits the BLOCK-EVALUATION contract: the
// paper's iterations update a worker's whole block per phase, so operators
// whose evaluation has work shared across components implement BlockOperator
// (EvalBlockScratch(scr, lo, hi, x, out)) and every engine phase loop calls
// EvalBlock, which dispatches to the block fast path and falls back to the
// per-component loop for operators that do not implement it (or when the
// scratch is nil). For ProxGradBF this turns a b-component phase from
// O(b*n) — each component materializing the full prox vector — into one
// shared prox pass plus a gradient range (O(n + b) when the smooth part is
// separable); InnerIterated runs its prox + K gradient iterations once per
// block instead of once per component; Linear/SparseLinear evaluate the row
// slab in one MulRangeTo.
//
// Implementations and their Vec scratch-slot budgets: ProxGradBF 1,
// InnerIterated 2, ProxGradFB 0, GradOp 0, Linear/SparseLinear 0; Relaxed
// consumes no slots and forwards the scratch to its inner operator. Smooth
// functions share their whole-gradient work across a component range
// through RangeGradSmooth (GradRange): Quadratic and LeastSquares compute
// the Hessian/Gram row slab in one pass, the logistic loss computes its
// m margins and sigmoid coefficients once per range. RangeGradSmooth
// implementations may use scratch Aux slots >= 1; Aux slot 0 is reserved
// for the Residual fast path. Block and per-component paths are
// componentwise bit-identical — the deterministic engines produce identical
// Report trajectories whichever path runs (pinned by blockpath_test.go).
//
// OperatorResidual (and the internal ResidualWith the engines use for
// stopping and certification) routes through ONE full operator application
// plus a subtract whenever the operator can apply itself wholesale,
// keeping the per-component loop only as the fallback — the fixed-point
// residual of a coupled operator is O(n + apply), not O(n^2).
//
// Repeated Solves of the same shape can additionally share buffers across
// runs:
//
//	scr := repro.NewScratch()
//	for _, seed := range seeds {
//		res, _ := repro.Solve(spec, repro.WithSeed(seed), repro.WithScratch(scr))
//	}
//
// A Scratch must not be shared by concurrent Solve calls.
//
// # Tuning knobs
//
// The kernel-level performance knobs live in one group, Tuning, set with
// WithTuning (or the per-knob WithBlockSize, WithIntraParallelism,
// WithGramPrecompute); the fault-injection knobs form a second group,
// Faults, set with WithFaults. Both groups are declared exactly once in the
// knob table (KnobTable): the asyncsolve CLI flags, the dist coordinator's
// flags, the server's /v1/solve JSON fields and the load generator all
// derive from the same entries, so the surfaces cannot drift.
//
//	knob               flag              JSON              default  effect
//	Tuning.BlockSize   -block-size       block_size        0        column-tile width of dense row-slab
//	                                                                matvecs (0 = untiled); helps when rows
//	                                                                stop fitting in cache (n in the thousands)
//	Tuning.IntraParallelism
//	                   -intra-parallel   intra_parallel    0        goroutine lanes for block evaluations
//	                                                                at least 64 rows tall; helps when blocks
//	                                                                are tall and cores are otherwise idle
//	Tuning.GramPrecompute
//	                   -gram-precompute  gram_precompute   true     false = lean LeastSquares residual form:
//	                                                                no n^2 Gram memory, O(m(b+n)) slabs
//	Faults.DropProb    -drop             drop_prob         0        iid per-link message loss
//	Faults.ReorderProb -reorder          reorder_prob      0        per-link hold-back reordering
//	Faults.MaxLinkDelay
//	                   -maxdelay         max_link_delay    0s       uniform per-link transit delay
//
// BlockSize and IntraParallelism are BIT-IDENTICAL to the scalar reference
// and never change a trajectory: every dot product in the tree reduces in
// one canonical 4-accumulator order (s0..s3 over j mod 4, sequential tail,
// fixed combine), tiling carries the accumulator quartet across tiles, and
// parallel lanes write disjoint output rows. GramPrecompute is the one
// knob that changes bits — it selects a different (internally consistent,
// mathematically equivalent) gradient form at scenario build, for problems
// where the n x n Gram matrix is the memory bottleneck. Engines install
// Spec.Tuning on every worker scratch at solve start, so pooled scratches
// reused across jobs always run with the current job's knobs. The knob
// matrix is pinned by tuning_test.go (trajectory equality per engine per
// combination) and internal/operators (per-block bit identity).
//
// # Measuring performance
//
// The benchmark suite is defined once in internal/benchsuite and runs two
// ways: `go test -bench=. -benchmem` (the root bench_test.go delegates to
// it), and the CLI capture
//
//	asyncsolve bench            # ~1s per micro case + experiment suite
//	asyncsolve bench -quick     # single repetition per case (CI smoke)
//
// which writes BENCH_<rev>.json, the machine-readable performance record
// the CI benchmark job uploads for every revision. The JSON schema
// (schema_version 1) is an envelope
//
//	{"schema_version": 1, "revision": "<git short rev>",
//	 "go_version": "...", "goos": "...", "goarch": "...", "num_cpu": N,
//	 "timestamp": "RFC3339", "benchtime_ns": N, "results": [...]}
//
// with one result per case:
//
//	{"name": "DESUpdatePhase", "kind": "micro" | "experiment",
//	 "iterations": N, "ns_per_op": N, "allocs_per_op": N,
//	 "bytes_per_op": N, "solve_rate_per_sec": N}
//
// where solve_rate_per_sec is solver iterations/updates per wall-clock
// second (0 when the case has no meaningful unit count). Experiment cases
// time one complete experiment (workload generation included); micro cases
// hoist workload generation into untimed setup, so ns/op measures solving.
// The full reproduction suite itself runs in parallel via
// experiments.RunAll (CLI: cmd/experiments -parallel N).
//
// The BlockEval cases come in pairs — BlockEvalN1024 and
// BlockEvalN1024PerComponent run the identical workload and block partition
// through the block fast path and the forced per-component fallback — so
// every capture records the block contract's speedup multiple. CI gates it:
//
//	asyncsolve bench -match '^BlockEval' -experiments=false -out BENCH_new.json
//	asyncsolve bench-compare -baseline BENCH_baseline.json -current BENCH_new.json
//
// (make bench-compare) fails when any pair's multiple regresses more than
// 20% below the committed BENCH_baseline.json. The same command gates the
// serving-efficiency ratio (ServeSustained/ScenarioSolveLasso) and the
// solve-rate trajectory: every Scenario*, DistStarWorkers, DistMeshWorkers
// and ServeSustained case, normalized by the within-capture geometric mean
// of the cases common to both files, must stay within its tolerance of the
// baseline's normalized rate. Ratios within one capture, never raw ns/op
// across captures, are compared, so every gate holds across machines of
// different absolute speed.
//
// # Static analysis
//
// The invariants above — allocation-free hot paths, ONE canonical
// reduction order, cancellable engine loops, a single knob table, a closed
// deprecation window, bit-reproducible trajectories, joined goroutines, a
// respected scratch-slot partition and sound lock usage — are enforced
// mechanically by reprolint (cmd/reprolint, built on internal/analysis),
// which runs standalone, as `go vet -vettool=$(which reprolint)`, under
// `make lint`, and in CI. Nine analyzers, the last four path-sensitive
// (they run on the intraprocedural control-flow graph and reaching-facts
// dataflow engine of internal/analysis/cfg, so a branch that skips an
// Unlock or a WaitGroup.Add is a real finding, not a grep match):
//
//   - hotpath: a function whose doc comment carries the "//repro:hotpath"
//     directive (and every small same-package helper it calls) must not
//     contain allocating constructs — composite literals, make/new/append,
//     closures, interface boxing, fmt/log calls, map iteration. The vec
//     kernels, the EvalBlock/EvalComponent dispatchers, the Scratch fast
//     paths and the engine phase computations are annotated. A provably
//     cold construct (lazy warm-up growth, a panic path) carries
//     "//repro:alloc-ok <reason>".
//   - vecorder: hand-rolled []float64 dot/accumulate reduction loops
//     outside internal/vec are forbidden; reductions route through
//     vec.Dot, vec.Sum, vec.DotStrideAcc and friends so every evaluation
//     path shares the canonical reduction order. "//repro:vec-ok <reason>"
//     suppresses.
//   - ctxloop: unbounded for-loops in the engine/worker packages must
//     observe a ctx/stop/done signal (directly or through a same-package
//     callee); bounded drain and timer idioms are recognized.
//     "//repro:ctx-ok <reason>" suppresses.
//   - knobdrift: registering a flag or JSON field whose name collides with
//     a knob-table entry outside the table's own derivation helpers is a
//     second source of truth and is rejected.
//   - nodeprecated: internal packages, commands and examples may not call
//     the deprecated shims (RunModel family, WithDropProb/WithReorderProb/
//     WithMaxLinkDelay); they name the WithFaults/Solve replacements.
//   - determinism: the result-affecting packages (internal/vec, operators,
//     core, des, runtime, dist, and the root scenario builders) must not
//     read ambient state: global math/rand, os.Getenv and runtime.NumCPU
//     are rejected outside a function whose doc carries
//     "//repro:tuning-gate <reason>" (the lane-pool sizing, where the knob
//     contract proves machine shape cannot change a trajectory). Clock
//     readings are tracked through the CFG: they may flow into deadlines,
//     durations and Report timing fields, but may not escape the time
//     domain into plain numerics or seed a rand source. Values produced by
//     map iteration may not feed float accumulation.
//     "//repro:nondet-ok <reason>" suppresses.
//   - goroutinelife: every go statement in internal/runtime, dist, server
//     and des must discharge a join/stop obligation on all paths:
//     WaitGroup pairing (the Add must reach the spawn on EVERY
//     control-flow path — an Add on one branch only is reported), ranging
//     over a channel, calling close, or observing a ctx/stop signal
//     (transitively, like ctxloop). "//repro:join-ok <reason>" suppresses.
//   - slotbudget: scratch slot usage respects the documented budget
//     (block.go): Aux slot 0 only inside ResidualWith, and a slot view
//     that was re-acquired — even on a single branch — or held across an
//     interface dispatch that received the Scratch is stale and may not
//     be read. "//repro:slot-ok <reason>" suppresses.
//   - lockdiscipline: a mutex locked in a function is released on every
//     CFG path out of it (an early return that skips the Unlock is the
//     finding), never double-unlocked, never deferred-unlocked inside a
//     loop, and never copied by value. "//repro:lock-ok <reason>"
//     suppresses (lock handoffs).
//
// The legacy entry points RunModel, RunSim, RunSimSync, RunShared and
// RunMessage remain as deprecated shims over Solve for one release; see
// the migration note at the top of repro.go.
//
// See the examples/ directory for complete programs and EXPERIMENTS.md for
// the reproduction of the paper's figures and claims.
package repro
