package repro_test

// Tests of the Solve-level buffer-reuse option (WithScratch): reusing a
// Scratch across repeated solves must be invisible to results, on every
// engine, including the deterministic ones bit for bit.

import (
	"testing"

	"repro"
)

// TestWithScratchDeterministicEnginesBitIdentical solves the same spec
// three times with one shared Scratch and compares against a fresh solve;
// the deterministic engines (model, sim, simsync) must agree exactly.
func TestWithScratchDeterministicEnginesBitIdentical(t *testing.T) {
	spec, _ := lassoSpec(t)
	for _, engine := range []repro.Engine{repro.EngineModel, repro.EngineSim, repro.EngineSimSync} {
		engine := engine
		t.Run(engine.Name(), func(t *testing.T) {
			opts := func(extra ...repro.Option) []repro.Option {
				return append([]repro.Option{
					repro.WithEngine(engine),
					repro.WithDelay(repro.BoundedRandomDelay{B: 8, Seed: 2}),
					repro.WithWorkers(4),
					repro.WithSeed(3),
					repro.WithTol(1e-9),
					repro.WithMaxIter(2000000),
					repro.WithMaxUpdates(2000000),
				}, extra...)
			}
			fresh, err := repro.Solve(spec, opts()...)
			if err != nil {
				t.Fatal(err)
			}
			scr := repro.NewScratch()
			for run := 0; run < 3; run++ {
				res, err := repro.Solve(spec, opts(repro.WithScratch(scr))...)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Converged {
					t.Fatalf("run %d did not converge", run)
				}
				if len(res.X) != len(fresh.X) {
					t.Fatalf("run %d: dim %d != %d", run, len(res.X), len(fresh.X))
				}
				for i := range res.X {
					if res.X[i] != fresh.X[i] {
						t.Fatalf("run %d: component %d differs with scratch: %v != %v",
							run, i, res.X[i], fresh.X[i])
					}
				}
				if res.Iterations != fresh.Iterations || res.Updates != fresh.Updates {
					t.Errorf("run %d: trajectory changed: iters %d/%d updates %d/%d",
						run, res.Iterations, fresh.Iterations, res.Updates, fresh.Updates)
				}
			}
		})
	}
}

// TestWithScratchGoroutineEnginesConverge checks the nondeterministic
// engines still reach the fixed point when a Scratch is reused across runs.
func TestWithScratchGoroutineEnginesConverge(t *testing.T) {
	spec, xstar := lassoSpec(t)
	for _, engine := range []repro.Engine{repro.EngineShared, repro.EngineMessage} {
		engine := engine
		t.Run(engine.Name(), func(t *testing.T) {
			scr := repro.NewScratch()
			for run := 0; run < 2; run++ {
				res, err := repro.Solve(spec,
					repro.WithEngine(engine),
					repro.WithWorkers(4),
					repro.WithTol(1e-9),
					repro.WithMaxUpdates(2000000),
					repro.WithScratch(scr),
				)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Converged {
					t.Fatalf("run %d did not converge", run)
				}
				if e := repro.DistInf(res.X, xstar); e > 1e-6 {
					t.Errorf("run %d: fixed point off by %v", run, e)
				}
			}
		})
	}
}
