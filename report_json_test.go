package repro_test

// Report JSON round-trip tests: the serving layer (internal/server) streams
// the terminal Report verbatim as JSON, so the encoding must be stable —
// snake_case keys, Elapsed as integer nanoseconds, engine-specific detail
// never leaked — and decoding must restore every exported field.

import (
	"encoding/json"
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"repro"
)

// goldenReport exercises every exported Report field at once (no real
// engine produces all of them together, but the encoding must handle it).
func goldenReport() repro.Report {
	return repro.Report{
		Engine:            "sim",
		X:                 []float64{1.5, -2.25, 0},
		Converged:         true,
		Iterations:        42,
		Updates:           126,
		FinalResidual:     3.5e-10,
		FinalError:        1.25e-9,
		Errors:            []float64{1, 0.5, 0.25},
		ErrorTrace:        []repro.TimedError{{Time: 1.5, Error: 0.5}, {Time: 3, Error: 0.25}},
		Boundaries:        []int{3, 7, 12},
		StrictBoundaries:  []int{3, 8},
		Epochs:            []int{4, 9},
		Records:           []repro.IterationRecord{{J: 1, S: []int{0, 1}, MinLabel: 0, Worker: 2}},
		UpdatesPerWorker:  []int{40, 43, 43},
		MessagesSent:      100,
		MessagesDropped:   3,
		MessagesStale:     7,
		MessagesReordered: 2,
		MessagesDuplicate: 1,
		BytesSent:         4096,
		BytesReceived:     4000,
		WorkersLost:       2,
		WorkersRejoined:   2,
		Resharding:        4,
		Time:              17.5,
		Elapsed:           1500 * time.Millisecond,
	}
}

// TestReportJSONRoundTrip: marshal -> unmarshal must reproduce every
// exported field exactly.
func TestReportJSONRoundTrip(t *testing.T) {
	want := goldenReport()
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	var got repro.Report
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed the report:\n got %+v\nwant %+v", got, want)
	}
}

// TestReportJSONGoldenKeys pins the wire keys: stable snake_case names,
// elapsed as integer nanoseconds, and no unexported-detail leakage.
func TestReportJSONGoldenKeys(t *testing.T) {
	data, err := json.Marshal(goldenReport())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	want := []string{
		"boundaries", "bytes_received", "bytes_sent", "converged",
		"elapsed_ns", "engine", "epochs", "error_trace", "errors",
		"final_error", "final_residual", "iterations",
		"messages_dropped", "messages_duplicate", "messages_reordered",
		"messages_sent", "messages_stale", "records", "resharding",
		"strict_boundaries", "time", "updates", "updates_per_worker",
		"workers_lost", "workers_rejoined", "x",
	}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("wire keys drifted:\n got %v\nwant %v", keys, want)
	}
	// Elapsed must be integer nanoseconds, not a formatted duration string.
	if string(m["elapsed_ns"]) != "1500000000" {
		t.Fatalf("elapsed_ns = %s, want 1500000000", m["elapsed_ns"])
	}
	// Nested records use snake_case too.
	if s := string(m["records"]); !strings.Contains(s, `"min_label"`) {
		t.Fatalf("records lack snake_case keys: %s", s)
	}
	if s := string(m["error_trace"]); !strings.Contains(s, `"time"`) || !strings.Contains(s, `"error"`) {
		t.Fatalf("error_trace keys drifted: %s", s)
	}
}

// TestReportJSONOmitsUnproduced: a minimal report (the shape the model
// engine emits without XStar) must not serialize fields it never produced.
func TestReportJSONOmitsUnproduced(t *testing.T) {
	r := repro.Report{Engine: "model", X: []float64{0}, Iterations: 1, Updates: 1}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, absent := range []string{
		"errors", "error_trace", "records", "messages_sent",
		"bytes_sent", "elapsed_ns", "updates_per_worker",
	} {
		if _, ok := m[absent]; ok {
			t.Fatalf("unproduced field %q serialized: %s", absent, data)
		}
	}
	// converged:false and final_residual:0 must survive (no omitempty):
	// a non-converged report must say so explicitly.
	for _, present := range []string{"converged", "final_residual", "engine", "x"} {
		if _, ok := m[present]; !ok {
			t.Fatalf("required field %q missing: %s", present, data)
		}
	}
}

// TestReportJSONNonFinite: non-finite floats (routing iterates from +Inf
// distances) encode as the protobuf-JSON strings and decode back exactly.
func TestReportJSONNonFinite(t *testing.T) {
	r := repro.Report{
		Engine:        "model",
		X:             []float64{1, math.Inf(1)},
		FinalResidual: math.Inf(1),
		FinalError:    math.Inf(-1),
		Errors:        []float64{math.Inf(1), 2, 0.5},
		ErrorTrace:    []repro.TimedError{{Time: 1, Error: math.Inf(1)}},
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("non-finite report failed to marshal: %v", err)
	}
	if !strings.Contains(string(data), `"Infinity"`) || !strings.Contains(string(data), `"-Infinity"`) {
		t.Fatalf("non-finite floats not string-encoded: %s", data)
	}
	var got repro.Report
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("non-finite round trip drifted:\n got %+v\nwant %+v", got, r)
	}
}

// TestReportJSONFromSolve: a real engine report round-trips and the decoded
// copy carries no engine detail.
func TestReportJSONFromSolve(t *testing.T) {
	spec, _ := lassoSpec(t)
	res, err := repro.Solve(spec,
		repro.WithEngine(repro.EngineSim),
		repro.WithDelay(repro.BoundedRandomDelay{B: 8, Seed: 2}),
		repro.WithWorkers(4),
		repro.WithSeed(3),
		repro.WithTol(1e-9),
	)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var got repro.Report
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Engine != res.Engine || got.Converged != res.Converged ||
		got.Updates != res.Updates || !reflect.DeepEqual(got.X, res.X) {
		t.Fatalf("decoded report drifted from original")
	}
	if _, ok := got.SimDetail(); ok {
		t.Fatal("decoded report claims engine detail")
	}
}
