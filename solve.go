package repro

// The unified solver entry point. The paper's whole point is that ONE
// asynchronous iterative scheme (Definitions 1-3) subsumes many execution
// regimes — bounded or unbounded delays, out-of-order messages, flexible
// communication, shared memory or message passing. Solve mirrors that: a
// single Spec describes the iteration, and interchangeable Engines execute
// it under the regime of interest.
//
// A Spec separates the four concerns that older entry points smeared across
// three incompatible configs:
//
//   - Problem:   WHAT is solved (operator, start, reference, norm weights)
//   - Dynamics:  HOW reads are stale (delay labels, steering, flexible
//     communication)
//   - Execution: WHERE it runs (workers, compute costs, link latencies,
//     loss, topology, seed, tracing)
//   - Stopping:  WHEN it ends (tolerance and iteration/update/time budgets)
//
// Engines honour the subset of knobs their regime models; the rest are
// ignored (see the Engine docs in engine.go for the per-engine contract).

import (
	"context"
	"errors"
	"time"
)

// Problem identifies the fixed-point problem being solved.
type Problem struct {
	// Op is the fixed-point operator whose components are relaxed.
	Op Operator
	// X0 is the initial iterate; defaults to the zero vector.
	X0 []float64
	// XStar, when known, enables exact error tracking, error-based stopping
	// on the simulated engines, Theorem 1 checking and constraint (3)
	// validation. Engines that need it for stopping compute a synchronous
	// reference solution when it is omitted.
	XStar []float64
	// Weights is the positive weight vector u of the weighted max norm;
	// defaults to all ones. (Model engine only.)
	Weights []float64
}

// Dynamics describes the asynchrony of the iteration: which components are
// relaxed when, how stale the values they read are, and whether partial
// results are published mid-phase (Definition 3).
type Dynamics struct {
	// Delay produces the labels l_i(j) of Definition 1; defaults to Fresh.
	// (Model engine; the simulated and goroutine engines derive their
	// delays from the execution schedule instead.)
	Delay DelayModel
	// Steering produces the sets S_j of Definition 1; defaults to cyclic.
	// (Model engine.)
	Steering SteeringPolicy
	// Theta in [0, 1] enables flexible communication on the model engine:
	// reads blend the labelled value toward the freshest available state.
	Theta float64
	// Flexible publishes partial updates mid-phase on the simulated and
	// shared-memory engines (the hatched arrows of Fig. 2).
	Flexible FlexSchedule
	// DeltaThreshold enables flexible communication on the wire (dist
	// engine): a broadcast ships one frame covering the span of shard
	// components that moved by more than the threshold since last shipped,
	// and nothing when nothing moved; the reliable final re-broadcast
	// always carries the whole shard. Choose it at or below Tol.
	DeltaThreshold float64
	// ValidateConstraint3 checks inequality (3) at every read when XStar is
	// known (model engine with Theta > 0).
	ValidateConstraint3 bool
}

// Execution describes the machine the iteration runs on.
type Execution struct {
	// Workers is the number of processors (simulated or goroutines);
	// components are block-partitioned among them. Defaults to 4 on the
	// engines that use it (clamped to the dimension).
	Workers int
	// WorkerOf maps a component to the machine that owns it, for the epoch
	// bookkeeping of the model engine; defaults to a contiguous block
	// partition when Workers is set, identity otherwise.
	WorkerOf func(i int) int
	// Cost models per-phase compute durations (simulated engines; default
	// UniformCost(1)).
	Cost CostFunc
	// Latency models link transit times (simulated engines; default
	// FixedLatency(0.1)).
	Latency LatencyFunc
	// DropProb is the iid probability a message is lost in transit
	// (asynchronous simulator and dist engine).
	DropProb float64
	// ReorderProb is the iid probability a relayed block is held back long
	// enough for later messages to overtake it (dist engine fault
	// injection).
	ReorderProb float64
	// MaxLinkDelay adds a uniform random transit delay in [0, MaxLinkDelay]
	// to every relayed block (dist engine fault injection).
	MaxLinkDelay time.Duration
	// Topology selects the dist engine's data plane: "star" (default —
	// every shard frame relayed through the coordinator) or "mesh" (direct
	// worker-to-worker TCP links; the coordinator keeps only the control
	// plane).
	Topology string
	// HeartbeatEvery enables the dist engine's elastic mode: workers emit
	// heartbeat frames at this period, the coordinator declares a link dead
	// after a multiple of it, survivors are re-sharded and rejoining
	// workers warm-start from their last checkpoint. Zero (the default)
	// keeps the rigid fail-the-run behaviour. See Elastic / WithElastic.
	HeartbeatEvery time.Duration
	// CheckpointEvery is the period between worker shard checkpoints to
	// the coordinator (elastic dist engine; default 4x HeartbeatEvery).
	CheckpointEvery time.Duration
	// MaxRejoinWait bounds a restarted worker's dial-and-register retry
	// loop (elastic dist engine; default 10s).
	MaxRejoinWait time.Duration
	// CheckpointPath, when non-empty, makes the coordinator additionally
	// persist the assembled global checkpoint to this file so a restarted
	// coordinator can warm-start the whole solve (elastic dist engine).
	CheckpointPath string
	// ApplyStale lets late messages carrying older labels overwrite the
	// receiver's view (asynchronous simulator).
	ApplyStale bool
	// Neighbors restricts broadcasts to the listed peers (asynchronous
	// simulator); nil means all-to-all.
	Neighbors [][]int
	// Seed drives all randomness of the simulated engines.
	Seed uint64
	// Tuning holds the kernel-performance knob group (column tiling,
	// intra-block goroutine lanes, Gram precomputation). The zero value is
	// the default; every engine installs it on its worker scratches, so
	// pooled scratches reused across solves always run with the current
	// solve's knobs. See Tuning for the bit-identity guarantee.
	Tuning Tuning
	// Trace, when non-nil, records update phases and messages
	// (asynchronous simulator).
	Trace *TraceLog
	// Scratch, when non-nil, lets repeated Solves of the same shape reuse
	// hot-path buffers (operator temporaries, read vectors). See NewScratch;
	// a Scratch must not be shared by concurrent Solves.
	Scratch *Scratch
	// Ctx, when non-nil, cancels the solve: when the context is done the
	// engine stops at the next phase boundary and Solve returns the
	// context's error (the report is discarded — a cancelled trajectory is
	// not a result). Honoured by the model, sim, simsync, shared and
	// message engines; the dist engine checks it only before starting.
	Ctx context.Context
	// Progress, when non-nil, is bumped once per completed updating phase
	// so concurrent observers (a serving layer streaming progress events)
	// can watch the solve live. See Progress.
	Progress *Progress
}

// Stopping bounds the run and sets the convergence tolerance.
type Stopping struct {
	// Tol is the convergence tolerance. Model engine: fixed-point residual
	// (or error when XStar is given). Simulated engines: max-norm error to
	// XStar. Goroutine engines: per-block displacement. Zero disables.
	Tol float64
	// MaxIter bounds the model engine's global iterations.
	MaxIter int
	// MaxUpdates bounds the simulated engines' total updating phases; on
	// the goroutine engines it is divided by Workers into a per-worker
	// budget unless MaxUpdatesPerWorker is set.
	MaxUpdates int
	// MaxUpdatesPerWorker bounds each goroutine worker's updating phases.
	MaxUpdatesPerWorker int
	// MaxTime bounds the simulated engines' virtual clock.
	MaxTime float64
	// SweepsBelowTol is the consecutive-confirmation count of the goroutine
	// engines' termination detection (default 2).
	SweepsBelowTol int
	// ResidualEvery controls how often the model engine evaluates the
	// O(n*row) fixed-point residual for stopping; defaults to the dimension.
	ResidualEvery int
}

// Spec is the complete description of one asynchronous solve. The zero
// value of every field except Problem.Op is usable; Engine defaults to
// EngineModel.
type Spec struct {
	Problem
	Dynamics
	Execution
	Stopping
	// Engine selects the execution regime; defaults to EngineModel.
	Engine Engine
}

// NewSpec returns a Spec for op with every other field at its default,
// optionally adjusted by opts.
func NewSpec(op Operator, opts ...Option) Spec {
	spec := Spec{Problem: Problem{Op: op}}
	for _, o := range opts {
		o(&spec)
	}
	return spec
}

// Option mutates a Spec; pass options to Solve (or NewSpec) to adjust a
// base specification without copying it field by field.
type Option func(*Spec)

// WithEngine selects the execution engine.
func WithEngine(e Engine) Option { return func(s *Spec) { s.Engine = e } }

// WithX0 sets the initial iterate.
func WithX0(x0 []float64) Option { return func(s *Spec) { s.X0 = x0 } }

// WithXStar provides the known fixed point for error tracking and
// error-based stopping.
func WithXStar(xstar []float64) Option { return func(s *Spec) { s.XStar = xstar } }

// WithWeights sets the weighted max-norm weight vector u.
func WithWeights(u []float64) Option { return func(s *Spec) { s.Weights = u } }

// WithDelay sets the label function l_i(j) (model engine).
func WithDelay(d DelayModel) Option { return func(s *Spec) { s.Delay = d } }

// WithSteering sets the steering policy S_j (model engine).
func WithSteering(p SteeringPolicy) Option { return func(s *Spec) { s.Steering = p } }

// WithTheta sets the flexible-communication blend fraction (model engine).
func WithTheta(theta float64) Option { return func(s *Spec) { s.Theta = theta } }

// WithFlexible sets the mid-phase partial-publication schedule (simulated
// and shared-memory engines).
func WithFlexible(sched FlexSchedule) Option { return func(s *Spec) { s.Flexible = sched } }

// WithWorkers sets the processor count.
func WithWorkers(w int) Option { return func(s *Spec) { s.Workers = w } }

// WithCost sets the per-phase compute-cost model (simulated engines).
func WithCost(c CostFunc) Option { return func(s *Spec) { s.Cost = c } }

// WithLatency sets the link-latency model (simulated engines).
func WithLatency(l LatencyFunc) Option { return func(s *Spec) { s.Latency = l } }

// WithDropProb sets the message-loss probability (asynchronous simulator
// and dist engine).
//
// Deprecated: use WithFaults(Faults{DropProb: p}) — the fault knobs read
// and write as one group.
func WithDropProb(p float64) Option { return func(s *Spec) { s.DropProb = p } }

// WithReorderProb sets the probability a relayed block is held back so
// later messages overtake it (dist engine).
//
// Deprecated: use WithFaults(Faults{ReorderProb: p}).
func WithReorderProb(p float64) Option { return func(s *Spec) { s.ReorderProb = p } }

// WithMaxLinkDelay sets the maximum injected per-message transit delay
// (dist engine).
//
// Deprecated: use WithFaults(Faults{MaxLinkDelay: d}).
func WithMaxLinkDelay(d time.Duration) Option { return func(s *Spec) { s.MaxLinkDelay = d } }

// WithTopology selects the dist engine's data plane: "star" (coordinator
// relay, the default) or "mesh" (direct worker-to-worker TCP links).
func WithTopology(topology string) Option { return func(s *Spec) { s.Topology = topology } }

// WithDeltaThreshold enables flexible communication on the dist engine's
// wire: a broadcast ships one frame covering the span of shard components
// that moved by more than the threshold since last shipped, and nothing
// when nothing moved. Choose it at or below Tol; the reliable final
// re-broadcast always carries the whole shard.
func WithDeltaThreshold(threshold float64) Option {
	return func(s *Spec) { s.DeltaThreshold = threshold }
}

// WithApplyStale lets stale messages overwrite the receiver's view
// (asynchronous simulator).
func WithApplyStale(apply bool) Option { return func(s *Spec) { s.ApplyStale = apply } }

// WithNeighbors restricts broadcasts to a topology (asynchronous simulator).
func WithNeighbors(nb [][]int) Option { return func(s *Spec) { s.Neighbors = nb } }

// WithSeed sets the seed of the simulated engines' randomness.
func WithSeed(seed uint64) Option { return func(s *Spec) { s.Seed = seed } }

// WithTrace records update phases and messages into lg (asynchronous
// simulator).
func WithTrace(lg *TraceLog) Option { return func(s *Spec) { s.Trace = lg } }

// WithScratch attaches reusable solver state so repeated Solves of the same
// shape avoid re-allocating hot-path buffers. Not safe for concurrent
// Solves sharing one Scratch.
func WithScratch(scr *Scratch) Option { return func(s *Spec) { s.Scratch = scr } }

// WithContext makes the solve cancellable: when ctx is done the engine
// stops at the next phase boundary and Solve returns ctx's error. This is
// how a serving layer stops abandoned jobs from burning workers.
func WithContext(ctx context.Context) Option { return func(s *Spec) { s.Ctx = ctx } }

// WithProgress attaches a live progress counter bumped once per completed
// updating phase, readable from other goroutines while the solve runs.
func WithProgress(p *Progress) Option { return func(s *Spec) { s.Progress = p } }

// WithTol sets the convergence tolerance.
func WithTol(tol float64) Option { return func(s *Spec) { s.Tol = tol } }

// WithMaxIter bounds the model engine's iterations.
func WithMaxIter(n int) Option { return func(s *Spec) { s.MaxIter = n } }

// WithMaxUpdates bounds the total updating phases.
func WithMaxUpdates(n int) Option { return func(s *Spec) { s.MaxUpdates = n } }

// WithMaxUpdatesPerWorker bounds each goroutine worker's updating phases.
func WithMaxUpdatesPerWorker(n int) Option { return func(s *Spec) { s.MaxUpdatesPerWorker = n } }

// WithMaxTime bounds the simulated engines' virtual clock.
func WithMaxTime(t float64) Option { return func(s *Spec) { s.MaxTime = t } }

// WithSweepsBelowTol sets the goroutine engines' consecutive-confirmation
// count.
func WithSweepsBelowTol(k int) Option { return func(s *Spec) { s.SweepsBelowTol = k } }

// WithResidualEvery sets the model engine's residual evaluation period.
func WithResidualEvery(k int) Option { return func(s *Spec) { s.ResidualEvery = k } }

// WithValidateConstraint3 enables inequality (3) validation at every read
// (model engine, Theta > 0, XStar known).
func WithValidateConstraint3(check bool) Option {
	return func(s *Spec) { s.ValidateConstraint3 = check }
}

// Solve executes the asynchronous iteration described by spec, adjusted by
// opts, on the selected engine (EngineModel when unset), and returns the
// unified Report.
func Solve(spec Spec, opts ...Option) (*Report, error) {
	for _, o := range opts {
		o(&spec)
	}
	if spec.Op == nil {
		return nil, errors.New("repro: Spec.Problem.Op is required")
	}
	if spec.Engine == nil {
		spec.Engine = EngineModel
	}
	if spec.Ctx != nil {
		if err := spec.Ctx.Err(); err != nil {
			return nil, err
		}
	}
	return spec.Engine.Solve(spec)
}
